//! Property tests on the run statistics: the enumeration counters must be
//! internally consistent for any input, since the Fig. 3/4 and Table 2
//! experiments are read off them.

use proptest::prelude::*;
use sliceline::{PruningConfig, SliceLine, SliceLineConfig};
use sliceline_frame::IntMatrix;

fn dataset() -> impl Strategy<Value = (IntMatrix, Vec<f64>)> {
    (2usize..=4, 10usize..=40).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(1u32..=3, m..=m), n..=n),
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)], n..=n),
        )
            .prop_map(|(rows, errors)| (IntMatrix::from_rows(&rows).unwrap(), errors))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumeration_counters_are_consistent(
        (x0, errors) in dataset(),
        sigma in 1usize..5,
        dedup in proptest::bool::ANY,
    ) {
        let mut config = SliceLineConfig::builder()
            .k(3)
            .min_support(sigma)
            .alpha(0.95)
            .threads(1)
            .build()
            .unwrap();
        if !dedup {
            config.pruning = PruningConfig {
                deduplication: false,
                ..PruningConfig::all()
            };
        }
        let r = SliceLine::new(config).find_slices(&x0, &errors).unwrap();
        prop_assert!(!r.stats.levels.is_empty());
        prop_assert_eq!(r.stats.levels[0].level, 1);
        prop_assert_eq!(r.stats.levels[0].candidates, r.stats.l);
        prop_assert!(r.stats.basic_slices <= r.stats.l);
        let mut prev_threshold = 0.0f64;
        for (i, lvl) in r.stats.levels.iter().enumerate() {
            // Levels are contiguous starting at 1.
            prop_assert_eq!(lvl.level, i + 1);
            // Valid slices never exceed evaluated candidates.
            prop_assert!(lvl.valid <= lvl.candidates);
            // The score-pruning threshold is monotonically non-decreasing.
            prop_assert!(lvl.threshold_after >= prev_threshold - 1e-12);
            prev_threshold = lvl.threshold_after;
            if let Some(e) = &lvl.enumeration {
                // Join funnel: pairs >= feature-valid merges >= dedup
                // output >= survivors; pruning counters account for the
                // difference exactly.
                prop_assert!(e.merged_valid <= e.pairs);
                prop_assert!(e.deduped <= e.merged_valid);
                prop_assert_eq!(
                    e.survivors + e.pruned_size + e.pruned_score + e.pruned_parents,
                    e.deduped
                );
                // Evaluated candidates equal the survivors.
                prop_assert_eq!(lvl.candidates, e.survivors);
                if !dedup {
                    // Without deduplication the dedup count mirrors the
                    // merged count.
                    prop_assert_eq!(e.deduped, e.merged_valid);
                }
            }
        }
        // Total evaluated is the sum of per-level candidates.
        let sum: usize = r.stats.levels.iter().map(|l| l.candidates).sum();
        prop_assert_eq!(r.stats.total_evaluated(), sum);
    }

    #[test]
    fn topk_entries_respect_constraints(
        (x0, errors) in dataset(),
        sigma in 1usize..5,
        k in 1usize..5,
    ) {
        let config = SliceLineConfig::builder()
            .k(k)
            .min_support(sigma)
            .alpha(0.9)
            .threads(1)
            .build()
            .unwrap();
        let r = SliceLine::new(config).find_slices(&x0, &errors).unwrap();
        prop_assert!(r.top_k.len() <= k);
        for w in r.top_k.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for s in &r.top_k {
            prop_assert!(s.score > 0.0);
            prop_assert!(s.size >= sigma as f64);
            prop_assert!(s.error >= 0.0);
            prop_assert!(s.max_error <= 1.0 + 1e-12); // errors drawn from {0, .5, 1}
            prop_assert!(s.avg_error * s.size - s.error < 1e-9);
        }
    }
}
