//! Property tests for the anytime best-first engine.
//!
//! Three guarantees are pinned down here:
//!
//! 1. **Unlimited-budget parity** — the batched bitmap frontier returns
//!    the same top-K as the level-wise oracle, per-rank on score bits,
//!    across evaluation kernels, compaction policies, thread counts, and
//!    batch sizes. (Ranks are compared on score bits rather than
//!    predicates because tied scores may legally order differently
//!    between the two insertion sequences; when all scores are strictly
//!    distinct the predicates are compared too.)
//! 2. **Gap soundness** — under *any* evaluation budget, the certified
//!    gap bounds what the search may have missed: the true optimum
//!    (from an exhaustive run) either appears in the anytime top-K or
//!    scores no more than `kth + gap`.
//! 3. **Batched ≡ serial reference** — the parallel batched frontier
//!    agrees with the retired one-node-at-a-time reference.
//!
//! Errors are drawn from a dyadic grid (multiples of 1/64) so float
//! association cannot mask a real divergence.

use proptest::prelude::*;
use sliceline::config::{CompactKernel, EvalKernel, SliceLineConfig};
use sliceline::{PrioritySliceLine, SliceInfo, SliceLine};
use sliceline_frame::IntMatrix;

/// Random integer-coded dataset plus a dyadic error vector. Per-feature
/// domains of 2–3 keep the lattice exhaustively enumerable while still
/// producing multi-level winners.
fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<f64>)> {
    (2usize..=4, 8usize..=40).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(1u32..=3, m..=m), n..=n),
            proptest::collection::vec((0u32..=64).prop_map(|v| v as f64 / 64.0), n..=n),
        )
    })
}

fn base_config() -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(4)
        .min_support(2)
        .alpha(0.95)
        .threads(1)
        .build()
        .unwrap()
}

/// Per-rank score bits — the tie-robust fingerprint.
fn score_bits(top_k: &[SliceInfo]) -> Vec<u64> {
    top_k.iter().map(|s| s.score.to_bits()).collect()
}

/// Whether all scores are strictly distinct (then rank order is unique
/// and predicates must agree too).
fn distinct_scores(top_k: &[SliceInfo]) -> bool {
    top_k
        .windows(2)
        .all(|w| w[0].score.to_bits() != w[1].score.to_bits())
}

fn assert_topk_parity(got: &[SliceInfo], want: &[SliceInfo], label: &str) {
    assert_eq!(
        score_bits(got),
        score_bits(want),
        "{label}: score ranks diverged\n got: {got:?}\nwant: {want:?}"
    );
    if distinct_scores(want) {
        let gp: Vec<_> = got.iter().map(|s| s.predicates.clone()).collect();
        let wp: Vec<_> = want.iter().map(|s| s.predicates.clone()).collect();
        assert_eq!(gp, wp, "{label}: predicates diverged on distinct scores");
    }
}

fn check_unlimited_parity(x0: &IntMatrix, errors: &[f64]) {
    // Level-wise oracles across kernels and compaction must agree among
    // themselves; the frontier must match them at any thread count and
    // batch size.
    let mut cfg = base_config();
    cfg.eval = EvalKernel::Blocked { block_size: 16 };
    let oracle = SliceLine::new(cfg).find_slices(x0, errors).unwrap();
    for (eval, compact) in [
        (EvalKernel::Fused, CompactKernel::Off),
        (EvalKernel::Bitmap, CompactKernel::On),
    ] {
        let mut cfg = base_config();
        cfg.eval = eval;
        cfg.compact = compact;
        let other = SliceLine::new(cfg).find_slices(x0, errors).unwrap();
        assert_topk_parity(&other.top_k, &oracle.top_k, "level-wise kernels");
    }
    for threads in [1usize, 4] {
        for batch in [1usize, 7, 64] {
            let mut cfg = base_config();
            cfg.priority = true;
            cfg.priority_batch = batch;
            cfg.parallel = sliceline_linalg::ParallelConfig::new(threads);
            let out = PrioritySliceLine::new(cfg).find_slices(x0, errors).unwrap();
            assert!(out.exact, "unlimited budget must be exact");
            assert_eq!(out.gap, 0.0);
            assert_topk_parity(
                &out.result.top_k,
                &oracle.top_k,
                &format!("priority (threads={threads}, batch={batch}) vs level-wise"),
            );
        }
    }
}

fn check_gap_soundness(x0: &IntMatrix, errors: &[f64], max_evals: usize) {
    let mut cfg = base_config();
    cfg.priority = true;
    let full = PrioritySliceLine::new(cfg.clone())
        .find_slices(x0, errors)
        .unwrap();
    cfg.max_evals = max_evals;
    let tiny = PrioritySliceLine::new(cfg).find_slices(x0, errors).unwrap();
    assert!(tiny.evaluated <= full.evaluated.max(max_evals));
    assert!(tiny.gap >= 0.0);
    if tiny.exact {
        assert_eq!(tiny.gap, 0.0);
        assert_topk_parity(&tiny.result.top_k, &full.result.top_k, "exact under budget");
        return;
    }
    let kth = tiny
        .result
        .top_k
        .last()
        .map(|s| s.score.max(0.0))
        .unwrap_or(0.0);
    for (rank, opt) in full.result.top_k.iter().enumerate() {
        let found = tiny
            .result
            .top_k
            .iter()
            .any(|s| s.score.to_bits() == opt.score.to_bits());
        assert!(
            found || opt.score <= kth + tiny.gap + 1e-12,
            "gap certificate violated at rank {rank}: opt={} kth={kth} gap={}",
            opt.score,
            tiny.gap
        );
    }
}

fn check_batched_matches_serial(x0: &IntMatrix, errors: &[f64]) {
    let mut cfg = base_config();
    cfg.priority = true;
    let serial = PrioritySliceLine::new(cfg.clone())
        .find_slices_serial(x0, errors)
        .unwrap();
    cfg.priority_batch = 5;
    let batched = PrioritySliceLine::new(cfg).find_slices(x0, errors).unwrap();
    assert_topk_parity(
        &batched.result.top_k,
        &serial.result.top_k,
        "batched vs serial reference",
    );
}

/// Deterministic instances that run under plain `cargo test` even where
/// the proptest runner is unavailable.
#[test]
fn priority_parity_on_fixed_dataset() {
    let rows: Vec<Vec<u32>> = (0..36u32)
        .map(|i| vec![1 + (i % 2), 1 + ((i / 2) % 3), 1 + ((i / 6) % 2)])
        .collect();
    let e: Vec<f64> = (0..36)
        .map(|i| {
            if i % 2 == 0 && (i / 2) % 3 == 1 {
                1.0
            } else {
                ((i * 5) % 17) as f64 / 64.0
            }
        })
        .collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    check_unlimited_parity(&x0, &e);
    check_batched_matches_serial(&x0, &e);
    for budget in [1usize, 5, 20, 100] {
        check_gap_soundness(&x0, &e, budget);
    }
}

/// Larger budgets can only tighten the certificate: the gap is
/// non-increasing in `max_evals` (the threshold grows monotonically and
/// the Eq. 3 bound is non-increasing down the lattice).
#[test]
fn gap_shrinks_with_budget_on_fixed_dataset() {
    let rows: Vec<Vec<u32>> = (0..48u32)
        .map(|i| vec![1 + (i % 2), 1 + ((i / 2) % 3), 1 + ((i / 4) % 2)])
        .collect();
    let e: Vec<f64> = (0..48)
        .map(|i| {
            if i % 2 == 1 && (i / 2) % 3 == 0 {
                1.5
            } else {
                ((i * 7) % 13) as f64 / 64.0
            }
        })
        .collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let mut prev_gap = f64::INFINITY;
    for budget in [6usize, 12, 24, 48, 0] {
        let mut cfg = base_config();
        cfg.priority = true;
        cfg.max_evals = budget;
        let out = PrioritySliceLine::new(cfg).find_slices(&x0, &e).unwrap();
        assert!(
            out.gap <= prev_gap + 1e-12,
            "gap grew with budget: {} -> {} at budget {budget}",
            prev_gap,
            out.gap
        );
        prev_gap = out.gap;
    }
    assert_eq!(prev_gap, 0.0, "unlimited budget must certify exactness");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unlimited-budget frontier == level-wise oracle, across kernels,
    /// compaction, threads, and batch sizes.
    #[test]
    fn prop_priority_matches_levelwise((rows, e) in dataset_strategy()) {
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        check_unlimited_parity(&x0, &e);
    }

    /// The certified gap is sound under any evaluation budget.
    #[test]
    fn prop_gap_certificate_is_sound((rows, e) in dataset_strategy(), budget in 1usize..200) {
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        check_gap_soundness(&x0, &e, budget);
    }

    /// The batched parallel frontier agrees with the serial reference.
    #[test]
    fn prop_batched_matches_serial((rows, e) in dataset_strategy()) {
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        check_batched_matches_serial(&x0, &e);
    }
}
