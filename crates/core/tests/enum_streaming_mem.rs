//! Proves the streaming claim of the enumeration engine: the level-2
//! all-pairs join never materializes the `O(k²)` pair list (the old
//! implementation allocated `Vec::with_capacity(k·(k−1)/2)` of
//! `(usize, usize)` up front — 16 bytes per pair).
//!
//! A counting global allocator tracks the peak live-heap delta across the
//! call. With `k = 2000` parents the pair list alone would be ~32 MB; the
//! streaming engines must stay orders of magnitude below that.

use sliceline::config::{EnumKernel, PruningConfig};
use sliceline::enumerate::get_pair_candidates;
use sliceline::init::LevelState;
use sliceline::topk::TopK;
use sliceline::ScoringContext;
use sliceline_linalg::ExecContext;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak to the current live size, runs `f`, and returns the
/// peak heap growth (in bytes) observed during the call.
fn peak_growth<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (r, peak.saturating_sub(base))
}

/// One test function (not several) so concurrent test threads cannot
/// pollute each other's allocation counters.
#[test]
fn level2_join_streams_without_materializing_pairs() {
    const K: usize = 2000;
    // All parents share one feature: every merged pair is feature-invalid,
    // so the join inspects all C(K,2) pairs yet yields zero candidates —
    // the worst case for a materialized pair list.
    let col_feature = vec![0u32; K];
    let prev = LevelState {
        slices: (0..K as u32).map(|c| vec![c]).collect(),
        sizes: vec![50.0; K],
        errors: vec![25.0; K],
        max_errors: vec![1.0; K],
        scores: vec![1.0; K],
    };
    let ctx = ScoringContext {
        n: 100.0,
        total_error: 50.0,
        avg_error: 0.5,
        alpha: 0.95,
    };
    let topk = TopK::new(4, 1);
    let expected_pairs = K * (K - 1) / 2;
    let pair_list_bytes = expected_pairs * std::mem::size_of::<(usize, usize)>();
    for (kernel, threads) in [
        (EnumKernel::Serial, 1usize),
        (EnumKernel::Sharded { shards: 4 }, 2),
    ] {
        let exec = ExecContext::new(threads);
        let ((cands, stats), growth) = peak_growth(|| {
            get_pair_candidates(
                &prev,
                2,
                &col_feature,
                K,
                &ctx,
                1,
                &PruningConfig::all(),
                &topk,
                kernel,
                &exec,
            )
        });
        assert_eq!(stats.pairs, expected_pairs, "{kernel:?}");
        assert!(cands.is_empty(), "{kernel:?}");
        // The old implementation's up-front pair buffer alone was
        // ~32 MB here; the streaming engines need a small fraction
        // (parent bookkeeping + thread stacks), far below even an
        // eighth of the pair list.
        assert!(
            growth < pair_list_bytes / 8,
            "{kernel:?}: peak heap growth {growth} B vs pair list {pair_list_bytes} B"
        );
    }
}
