//! Property tests for enumeration-engine parity: the serial and sharded
//! candidate-generation engines must produce identical candidate sets
//! (up to ordering) and identical `EnumStats` counters over random level
//! states, pruning configurations, shard counts, and thread counts —
//! including the level-2 all-pairs join and deduplication-off mode.
//!
//! Each property also has a deterministic seeded instance that runs under
//! plain `cargo test` even where the proptest runner is unavailable.

use proptest::prelude::*;
use sliceline::config::{EnumKernel, PruningConfig};
use sliceline::enumerate::get_pair_candidates;
use sliceline::init::LevelState;
use sliceline::topk::TopK;
use sliceline::ScoringContext;
use sliceline_linalg::ExecContext;

/// SplitMix64 — deterministic, dependency-free RNG for the seeded
/// instances (proptest strategies only feed the property a seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random one-hot layout: `m` features with domain sizes 2–4. Returns the
/// per-column feature map (non-decreasing, as the one-hot layout
/// guarantees).
fn random_layout(rng: &mut Rng, m: usize) -> Vec<u32> {
    let mut col_feature = Vec::new();
    for f in 0..m {
        for _ in 0..(2 + rng.below(3)) {
            col_feature.push(f as u32);
        }
    }
    col_feature
}

/// Random evaluated level-`level` state over the layout: up to `max_k`
/// distinct feature-valid slices with random sizes/errors (some below any
/// plausible sigma, some with zero error, so the parent filter has work).
fn random_state(rng: &mut Rng, col_feature: &[u32], level: usize, max_k: usize) -> LevelState {
    let m = (*col_feature.last().unwrap() + 1) as usize;
    let mut feature_cols: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (c, &f) in col_feature.iter().enumerate() {
        feature_cols[f as usize].push(c as u32);
    }
    let mut seen = std::collections::HashSet::new();
    let mut state = LevelState::default();
    for _ in 0..max_k * 3 {
        if state.slices.len() >= max_k {
            break;
        }
        // Pick `level` distinct features, one column each.
        let mut feats: Vec<usize> = (0..m).collect();
        for i in 0..level.min(m) {
            let j = i + rng.below(m - i);
            feats.swap(i, j);
        }
        let mut cols: Vec<u32> = feats[..level.min(m)]
            .iter()
            .map(|&f| feature_cols[f][rng.below(feature_cols[f].len())])
            .collect();
        cols.sort_unstable();
        if cols.len() < level || !seen.insert(cols.clone()) {
            continue;
        }
        let size = (rng.below(120)) as f64;
        let error = size * rng.f64() * 0.6;
        state.slices.push(cols);
        state.sizes.push(size);
        // A fifth of the parents get zero error (dropped by the filter).
        state
            .errors
            .push(if rng.below(5) == 0 { 0.0 } else { error });
        state.max_errors.push(rng.f64());
        state.scores.push(rng.f64() * 2.0 - 0.5);
    }
    state
}

/// Runs one engine and returns (sorted candidates, stats).
#[allow(clippy::too_many_arguments)] // mirrors get_pair_candidates
fn run_engine(
    prev: &LevelState,
    level: usize,
    col_feature: &[u32],
    sigma: usize,
    pruning: &PruningConfig,
    topk: &TopK,
    kernel: EnumKernel,
    threads: usize,
) -> (Vec<Vec<u32>>, sliceline::enumerate::EnumStats) {
    let ctx = ScoringContext {
        n: 200.0,
        total_error: 80.0,
        avg_error: 0.4,
        alpha: 0.95,
    };
    let exec = ExecContext::new(threads);
    let (mut cands, stats) = get_pair_candidates(
        prev,
        level,
        col_feature,
        col_feature.len(),
        &ctx,
        sigma,
        pruning,
        topk,
        kernel,
        &exec,
    );
    cands.sort_unstable();
    (cands, stats)
}

/// The parity property for one seed: every (level, pruning, sigma,
/// threshold) cell must agree between serial and every sharded
/// configuration, in candidate sets and counters.
fn check_parity(seed: u64) {
    let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(1));
    let m = 3 + rng.below(3);
    let col_feature = random_layout(&mut rng, m);
    let prunings = [
        PruningConfig::all(),
        PruningConfig::none(),
        PruningConfig::no_parent_handling(),
        PruningConfig::no_score_pruning(),
    ];
    // An occupied top-K so score pruning has a live threshold.
    let mut topk = TopK::new(2, 1);
    topk.update(&LevelState {
        slices: vec![vec![0], vec![1]],
        sizes: vec![80.0, 60.0],
        errors: vec![40.0, 20.0],
        max_errors: vec![1.0, 0.9],
        scores: vec![0.9, 0.4],
    });
    for level in 2..=4usize {
        let prev = random_state(&mut rng, &col_feature, level - 1, 24);
        if prev.len() < 2 {
            continue;
        }
        for pruning in &prunings {
            let sigma = 1 + rng.below(40);
            let (serial, serial_stats) = run_engine(
                &prev,
                level,
                &col_feature,
                sigma,
                pruning,
                &topk,
                EnumKernel::Serial,
                1,
            );
            for threads in [1usize, 2, 4] {
                for shards in [0usize, 1, 3, 8] {
                    let (sharded, sharded_stats) = run_engine(
                        &prev,
                        level,
                        &col_feature,
                        sigma,
                        pruning,
                        &topk,
                        EnumKernel::Sharded { shards },
                        threads,
                    );
                    assert_eq!(
                        sharded, serial,
                        "seed {seed} level {level} threads {threads} shards {shards}"
                    );
                    assert!(
                        sharded_stats.same_counters(&serial_stats),
                        "seed {seed} level {level} threads {threads} shards {shards}:\n\
                         sharded {sharded_stats:?}\nserial  {serial_stats:?}"
                    );
                }
            }
            // Auto must resolve to one of the two engines — same sets.
            let (auto, auto_stats) = run_engine(
                &prev,
                level,
                &col_feature,
                sigma,
                pruning,
                &topk,
                EnumKernel::Auto { sharded_above: 8 },
                2,
            );
            assert_eq!(auto, serial, "seed {seed} level {level} auto");
            assert!(auto_stats.same_counters(&serial_stats));
        }
    }
}

/// Sharded output must also be deterministic: identical across repeat runs
/// and thread counts at a fixed shard count (FNV sharding + chunk-ordered
/// scans, no scheduling dependence) — here including candidate ORDER, not
/// just the set.
fn check_sharded_determinism(seed: u64) {
    let mut rng = Rng(seed ^ 0xdead_beef);
    let col_feature = random_layout(&mut rng, 4);
    let prev = random_state(&mut rng, &col_feature, 2, 20);
    if prev.len() < 2 {
        return;
    }
    let topk = TopK::new(2, 1);
    let ctx = ScoringContext {
        n: 200.0,
        total_error: 80.0,
        avg_error: 0.4,
        alpha: 0.95,
    };
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for threads in [1usize, 2, 4] {
        for _rep in 0..2 {
            let exec = ExecContext::new(threads);
            let (cands, _) = get_pair_candidates(
                &prev,
                3,
                &col_feature,
                col_feature.len(),
                &ctx,
                4,
                &PruningConfig::all(),
                &topk,
                EnumKernel::Sharded { shards: 4 },
                &exec,
            );
            match &reference {
                None => reference = Some(cands),
                Some(r) => assert_eq!(&cands, r, "seed {seed} threads {threads}"),
            }
        }
    }
}

#[test]
fn serial_and_sharded_agree_seeded() {
    for seed in 0..24u64 {
        check_parity(seed);
    }
}

#[test]
fn sharded_is_deterministic_seeded() {
    for seed in 0..16u64 {
        check_sharded_determinism(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial ≡ sharded over random level states, pruning configs, shard
    /// and thread counts (levels 2–4, dedup on and off).
    #[test]
    fn serial_and_sharded_agree(seed in 0u64..10_000) {
        check_parity(seed);
    }

    /// Fixed shard count ⇒ identical candidate order across thread counts
    /// and repeats.
    #[test]
    fn sharded_is_deterministic(seed in 0u64..10_000) {
        check_sharded_determinism(seed);
    }
}
