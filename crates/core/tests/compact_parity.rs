//! Property tests for adaptive-compaction parity: a run with input
//! compaction `On` or `Auto` must be **bit-for-bit** identical to the
//! same run with compaction `Off` — same top-K (predicates, scores,
//! sizes, errors as exact floats) and same per-level enumeration
//! counters — across all three evaluation kernels and both enumeration
//! engines, over random datasets, supports, and level caps.
//!
//! Strict parity runs single-threaded: the gather changes `n`, and with
//! it the chunking of data-parallel reductions, so multi-threaded float
//! sums could differ in the last ulp for reasons unrelated to
//! compaction. Single-threaded, every kernel accumulates per-slice
//! errors in ascending row order, and the order-preserving gather of
//! rows that belong to no surviving slice leaves each accumulation
//! sequence — hence every bit of every statistic — unchanged.
//!
//! Each property also has a deterministic seeded instance that runs
//! under plain `cargo test` even where the proptest runner is
//! unavailable.

use proptest::prelude::*;
use sliceline::config::{CompactKernel, EnumKernel, EvalKernel};
use sliceline::{SliceLine, SliceLineConfig, SliceLineResult};
use sliceline_frame::IntMatrix;

/// SplitMix64 — deterministic, dependency-free RNG for the seeded
/// instances (proptest strategies only feed the property a seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random dataset: 3–5 features with domains 2–4, with a cold tail —
/// a block of rows confined to reserved per-feature codes and given
/// zero error, so their basic slices die at projection and the
/// surviving-candidate coverage genuinely shrinks (the gather must
/// fire, not just be reachable). Errors are full-precision randoms:
/// ties between distinct slices have measure zero, so top-K order is
/// unambiguous and bit-comparison is meaningful.
fn random_dataset(rng: &mut Rng) -> (IntMatrix, Vec<f64>) {
    let n = 48 + rng.below(120);
    let m = 3 + rng.below(3);
    let domains: Vec<u32> = (0..m).map(|_| 2 + rng.below(3) as u32).collect();
    let cold_from = n - n / (2 + rng.below(3)); // last third-to-half cold
    let mut rows = Vec::with_capacity(n);
    let mut errors = Vec::with_capacity(n);
    for i in 0..n {
        if i < cold_from {
            rows.push(
                domains
                    .iter()
                    .map(|&d| 1 + rng.below(d as usize) as u32)
                    .collect::<Vec<u32>>(),
            );
            // Mostly positive errors, some exact zeros inside the hot
            // block too, so eligibility filtering has work everywhere.
            errors.push(if rng.below(6) == 0 { 0.0 } else { rng.f64() });
        } else {
            // Reserved code (domain + 1) in every feature: no hot slice
            // covers these rows and their own slices carry zero error.
            rows.push(domains.iter().map(|&d| d + 1).collect::<Vec<u32>>());
            errors.push(0.0);
        }
    }
    (IntMatrix::from_rows(&rows).unwrap(), errors)
}

fn config(
    rng: &mut Rng,
    eval: EvalKernel,
    enum_kernel: EnumKernel,
    compact: CompactKernel,
    max_level: usize,
) -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(2 + rng.below(3))
        .min_support(2 + rng.below(5))
        .alpha(0.95)
        .eval(eval)
        .enum_kernel(enum_kernel)
        .max_level(max_level)
        .threads(1)
        .compact(compact)
        // Any retained fraction below 1 triggers the gather: the
        // maximally aggressive setting, so parity is stressed on every
        // level that drops anything at all.
        .compact_below(1.0)
        .build()
        .unwrap()
}

/// Bit-for-bit comparison of two runs: top-K and per-level counters.
/// `rows_retained`/`cols_retained` are intentionally excluded — they
/// describe the working set, which is exactly what compaction changes.
fn assert_runs_identical(base: &SliceLineResult, other: &SliceLineResult, what: &str) {
    assert_eq!(base.top_k, other.top_k, "{what}: top-K diverged");
    assert_eq!(
        base.stats.levels.len(),
        other.stats.levels.len(),
        "{what}: level count diverged"
    );
    for (a, b) in base.stats.levels.iter().zip(&other.stats.levels) {
        assert_eq!(a.level, b.level, "{what}");
        assert_eq!(a.candidates, b.candidates, "{what} level {}", a.level);
        assert_eq!(a.valid, b.valid, "{what} level {}", a.level);
        assert_eq!(
            a.threshold_after, b.threshold_after,
            "{what} level {}",
            a.level
        );
        match (&a.enumeration, &b.enumeration) {
            (None, None) => {}
            (Some(ea), Some(eb)) => assert!(
                ea.same_counters(eb),
                "{what} level {}: counters diverged\noff {ea:?}\non  {eb:?}",
                a.level
            ),
            _ => panic!("{what} level {}: enumeration presence diverged", a.level),
        }
    }
}

/// Retained dims must be non-increasing level-over-level (children can
/// only shrink coverage; columns are only ever dropped).
fn assert_retained_monotone(r: &SliceLineResult, what: &str) {
    for w in r.stats.levels.windows(2) {
        assert!(
            w[1].rows_retained <= w[0].rows_retained,
            "{what}: rows_retained grew: {:?}",
            r.stats.levels
        );
        assert!(
            w[1].cols_retained <= w[0].cols_retained,
            "{what}: cols_retained grew: {:?}",
            r.stats.levels
        );
    }
}

/// The parity property for one seed: off ≡ on ≡ auto for every
/// (eval kernel × enum engine × level cap) cell.
fn check_parity(seed: u64) {
    let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(17));
    let (x0, errors) = random_dataset(&mut rng);
    let max_level = 2 + rng.below(3); // levels 2–4
    let evals = [
        EvalKernel::Blocked { block_size: 16 },
        EvalKernel::Fused,
        EvalKernel::Bitmap,
    ];
    let enums = [EnumKernel::Serial, EnumKernel::Sharded { shards: 2 }];
    for eval in evals {
        for enum_kernel in enums {
            // Same derived config params for all three policies: clone
            // the Off config and switch only the policy.
            let mut cfg_rng = Rng(rng.0);
            let off_cfg = config(
                &mut cfg_rng,
                eval,
                enum_kernel,
                CompactKernel::Off,
                max_level,
            );
            let mut on_cfg = off_cfg.clone();
            on_cfg.compact = CompactKernel::On;
            let mut auto_cfg = off_cfg.clone();
            auto_cfg.compact = CompactKernel::Auto { min_rows: 1 };
            let off = SliceLine::new(off_cfg).find_slices(&x0, &errors).unwrap();
            let on = SliceLine::new(on_cfg).find_slices(&x0, &errors).unwrap();
            let auto = SliceLine::new(auto_cfg).find_slices(&x0, &errors).unwrap();
            let what = format!("seed {seed} eval {eval:?} enum {enum_kernel:?}");
            assert_runs_identical(&off, &on, &format!("{what} on"));
            assert_runs_identical(&off, &auto, &format!("{what} auto"));
            assert_retained_monotone(&on, &what);
            assert_retained_monotone(&auto, &what);
        }
    }
}

/// The cold tail must actually make the gather fire somewhere (else the
/// property above would pass vacuously on datasets that never compact).
fn check_gather_fires(seed: u64) -> bool {
    let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(17));
    let (x0, errors) = random_dataset(&mut rng);
    let mut cfg_rng = Rng(rng.0);
    let cfg = config(
        &mut cfg_rng,
        EvalKernel::Fused,
        EnumKernel::Serial,
        CompactKernel::On,
        3,
    );
    let r = SliceLine::new(cfg).find_slices(&x0, &errors).unwrap();
    r.stats
        .levels
        .iter()
        .any(|l| l.rows_retained < r.stats.n && l.rows_retained > 0)
}

#[test]
fn compact_off_on_auto_agree_seeded() {
    for seed in 0..12u64 {
        check_parity(seed);
    }
}

#[test]
fn gather_fires_on_cold_tail_datasets() {
    let fired = (0..12u64).filter(|&s| check_gather_fires(s)).count();
    assert!(fired >= 6, "gather fired on only {fired}/12 seeds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Off ≡ on ≡ auto over random datasets, kernels, engines, and
    /// level caps (bit-for-bit top-K and counter parity).
    #[test]
    fn compact_off_on_auto_agree(seed in 0u64..10_000) {
        check_parity(seed);
    }
}
