//! Property tests for the §3 bounds: admissibility of the score upper
//! bound over real lattice relationships computed from random data.

use proptest::prelude::*;
use sliceline::ScoringContext;

/// Random tiny dataset as (codes per row over `m` binary-ish features,
/// errors).
fn data_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<f64>)> {
    (2usize..=4, 8usize..=32).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(1u32..=3, m..=m), n..=n),
            proptest::collection::vec(
                prop_oneof![Just(0.0f64), Just(0.5), Just(1.0), Just(3.0)],
                n..=n,
            ),
        )
    })
}

/// Computes (size, total error, max error) for a conjunction.
fn stats(rows: &[Vec<u32>], errors: &[f64], predicates: &[(usize, u32)]) -> (f64, f64, f64) {
    let mut size = 0.0;
    let mut err = 0.0;
    let mut max: f64 = 0.0;
    for (row, &e) in rows.iter().zip(errors.iter()) {
        if predicates.iter().all(|&(j, c)| row[j] == c) {
            size += 1.0;
            err += e;
            max = max.max(e);
        }
    }
    (size, err, max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The upper bound computed from a child's parents dominates the
    /// child's true score — the core admissibility property that makes
    /// pruning exact (§3.1).
    #[test]
    fn parent_bound_dominates_child_score(
        (rows, errors) in data_strategy(),
        sigma in 1usize..4,
        alpha in prop_oneof![Just(0.5), Just(0.95), Just(1.0)],
    ) {
        let ctx = ScoringContext::new(&errors, alpha);
        let m = rows[0].len();
        // Enumerate all 2-predicate children with their 1-predicate parents.
        for j1 in 0..m {
            for c1 in 1..=3u32 {
                for j2 in (j1 + 1)..m {
                    for c2 in 1..=3u32 {
                        let p1 = stats(&rows, &errors, &[(j1, c1)]);
                        let p2 = stats(&rows, &errors, &[(j2, c2)]);
                        let child = stats(&rows, &errors, &[(j1, c1), (j2, c2)]);
                        if child.0 < sigma as f64 {
                            continue; // outside the bounded interval
                        }
                        let ub = ctx.score_upper_bound(
                            p1.0.min(p2.0),
                            p1.1.min(p2.1),
                            p1.2.min(p2.2),
                            sigma,
                        );
                        let sc = ctx.score(child.0, child.1);
                        prop_assert!(
                            sc <= ub + 1e-9,
                            "child score {sc} exceeds parent bound {ub} \
                             (parents {p1:?} {p2:?}, child {child:?})"
                        );
                    }
                }
            }
        }
    }

    /// Monotonicity of sizes and errors along lattice edges (§3.1): the
    /// child is the intersection of its parents.
    #[test]
    fn child_stats_bounded_by_parents((rows, errors) in data_strategy()) {
        let m = rows[0].len();
        for j1 in 0..m {
            for j2 in (j1 + 1)..m {
                let p1 = stats(&rows, &errors, &[(j1, 1)]);
                let p2 = stats(&rows, &errors, &[(j2, 2)]);
                let child = stats(&rows, &errors, &[(j1, 1), (j2, 2)]);
                prop_assert!(child.0 <= p1.0.min(p2.0));
                prop_assert!(child.1 <= p1.1.min(p2.1) + 1e-12);
                prop_assert!(child.2 <= p1.2.min(p2.2) + 1e-12);
                // The ⌈se⌉ refinement: child error also bounded by
                // ⌈|S|⌉ · min parent sm.
                prop_assert!(child.1 <= p1.0.min(p2.0) * p1.2.min(p2.2) + 1e-12);
            }
        }
    }

    /// The vectorized score (Eq. 5) is scale-invariant in the error
    /// vector: scaling e by a constant leaves all scores unchanged.
    #[test]
    fn scores_scale_invariant_in_errors(
        (rows, errors) in data_strategy(),
        scale in prop_oneof![Just(0.1f64), Just(10.0), Just(1e6)],
    ) {
        prop_assume!(errors.iter().sum::<f64>() > 0.0);
        let ctx1 = ScoringContext::new(&errors, 0.95);
        let scaled: Vec<f64> = errors.iter().map(|e| e * scale).collect();
        let ctx2 = ScoringContext::new(&scaled, 0.95);
        let m = rows[0].len();
        for j in 0..m {
            let (size, err, _) = stats(&rows, &errors, &[(j, 1)]);
            if size == 0.0 {
                continue;
            }
            let s1 = ctx1.score(size, err);
            let s2 = ctx2.score(size, err * scale);
            prop_assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
        }
    }
}
