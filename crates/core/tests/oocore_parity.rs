//! Property tests for out-of-core parity: the chunk-streamed driver must
//! return **bit-for-bit** the same top-K (predicates, scores, sizes,
//! errors, max errors) and level counts as the in-memory `find_slices`
//! path — across chunk sizes (including one-row chunks and chunks larger
//! than the dataset), evaluation kernels, compaction modes on the
//! in-memory side, and thread counts.
//!
//! Errors are drawn from a dyadic grid (multiples of 1/64), so every
//! partial sum is exact in f64 and the chunked merge association cannot
//! mask a real divergence: any mismatch is a bug, not rounding.

use proptest::prelude::*;
use sliceline::config::{CompactKernel, EvalKernel, SliceLineConfig};
use sliceline::{find_slices_streamed, SliceLine, SliceLineResult};
use sliceline_frame::{IntMatrix, MemorySource};

/// Random integer-coded dataset: `m` features with domain 2–3, `n` rows
/// of codes in `1..=domain`, and dyadic per-row errors.
fn dataset_strategy() -> impl Strategy<Value = (IntMatrix, Vec<f64>)> {
    (2usize..=4, 8usize..=48).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(2u32..=3, m..=m),
            proptest::collection::vec(proptest::collection::vec(0u32..6, m..=m), n..=n),
            proptest::collection::vec((0u32..=64).prop_map(|v| f64::from(v) / 64.0), n..=n),
        )
            .prop_map(move |(domains, codes, errors)| {
                let data: Vec<u32> = codes
                    .iter()
                    .flat_map(|row| row.iter().zip(domains.iter()).map(|(&c, &d)| 1 + (c % d)))
                    .collect();
                let x0 = IntMatrix::new(n, m, data, domains).unwrap();
                (x0, errors)
            })
    })
}

fn config(
    eval: EvalKernel,
    compact: CompactKernel,
    threads: usize,
    chunk_rows: usize,
) -> SliceLineConfig {
    let mut cfg = SliceLineConfig::builder()
        .k(4)
        .min_support(2)
        .alpha(0.9)
        .max_level(3)
        .threads(threads)
        .chunk_rows(chunk_rows)
        .build()
        .unwrap();
    cfg.eval = eval;
    cfg.compact = compact;
    cfg
}

/// One top-K entry: predicates plus exact score/size/error/max_error bits.
type SliceBits = (Vec<(usize, u32)>, u64, u64, u64, u64);

/// The comparable fingerprint of a run: exact top-K bits plus the number
/// of enumerated levels.
fn fingerprint(r: &SliceLineResult) -> (Vec<SliceBits>, usize) {
    (
        r.top_k
            .iter()
            .map(|s| {
                (
                    s.predicates.clone(),
                    s.score.to_bits(),
                    s.size.to_bits(),
                    s.error.to_bits(),
                    s.max_error.to_bits(),
                )
            })
            .collect(),
        r.stats.levels.len(),
    )
}

fn streamed(x0: &IntMatrix, errors: &[f64], cfg: &SliceLineConfig) -> (Vec<SliceBits>, usize) {
    let mut src = MemorySource::new(x0.clone(), errors.to_vec()).unwrap();
    fingerprint(&find_slices_streamed(&mut src, cfg).unwrap())
}

/// Deterministic instance that runs even where the proptest runner is
/// unavailable: a planted hot slice, every kernel, chunk sizes from one
/// row to beyond the dataset, and both compaction modes as oracles.
#[test]
fn streamed_agrees_on_fixed_dataset() {
    let rows: Vec<Vec<u32>> = (0..60u32)
        .map(|i| vec![1 + i % 2, 1 + i % 3, 1 + (i / 2) % 4])
        .collect();
    let errors: Vec<f64> = (0..60)
        .map(|i| {
            if i % 2 == 0 && i % 3 == 1 {
                1.0
            } else {
                ((i * 11) % 65) as f64 / 64.0
            }
        })
        .collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let base_cfg = config(EvalKernel::default(), CompactKernel::Off, 1, 0);
    let base = fingerprint(
        &SliceLine::new(base_cfg.clone())
            .find_slices(&x0, &errors)
            .unwrap(),
    );
    assert!(!base.0.is_empty(), "fixture finds no slices");
    for eval in [
        EvalKernel::Blocked { block_size: 4 },
        EvalKernel::Fused,
        EvalKernel::Bitmap,
    ] {
        // Both compaction modes on the in-memory side pin the oracle the
        // streamed path (compaction forced off) is compared against.
        for compact in [CompactKernel::Off, CompactKernel::On] {
            let oracle = fingerprint(
                &SliceLine::new(config(eval, compact, 1, 0))
                    .find_slices(&x0, &errors)
                    .unwrap(),
            );
            assert_eq!(oracle, base, "{eval:?} compact={compact:?} oracle diverged");
        }
        for chunk_rows in [1usize, 7, 60, 128] {
            for threads in [1usize, 2] {
                let got = streamed(
                    &x0,
                    &errors,
                    &config(eval, CompactKernel::Off, threads, chunk_rows),
                );
                assert_eq!(
                    got, base,
                    "streamed {eval:?} chunk={chunk_rows} x{threads} diverged"
                );
            }
        }
    }
}

/// A memory budget small enough to force every chunk through the spill
/// file must not change any bit of the result.
#[test]
fn forced_spill_agrees_on_fixed_dataset() {
    let rows: Vec<Vec<u32>> = (0..48u32)
        .map(|i| vec![1 + i % 3, 1 + (i / 3) % 4, 1 + i % 2])
        .collect();
    let errors: Vec<f64> = (0..48).map(|i| ((i * 17) % 65) as f64 / 64.0).collect();
    let x0 = IntMatrix::from_rows(&rows).unwrap();
    let base = fingerprint(
        &SliceLine::new(config(EvalKernel::default(), CompactKernel::Off, 1, 0))
            .find_slices(&x0, &errors)
            .unwrap(),
    );
    let mut cfg = config(EvalKernel::default(), CompactKernel::Off, 1, 5);
    cfg.mem_budget_bytes = 2; // spill share of 1 byte: nothing stays resident
    let mut src = MemorySource::new(x0, errors).unwrap();
    let got = fingerprint(&find_slices_streamed(&mut src, &cfg).unwrap());
    assert_eq!(got, base, "forced-spill run diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunked execution is invisible: for random datasets, every
    /// (kernel, chunk size, thread count) streamed combination matches
    /// the in-memory result bit-for-bit, including one-row chunks and
    /// chunks larger than the dataset.
    #[test]
    fn streamed_matches_in_memory_bit_for_bit((x0, errors) in dataset_strategy()) {
        let n = x0.rows();
        let base = fingerprint(
            &SliceLine::new(config(EvalKernel::default(), CompactKernel::Off, 1, 0))
                .find_slices(&x0, &errors)
                .unwrap(),
        );
        for eval in [EvalKernel::default(), EvalKernel::Fused, EvalKernel::Bitmap] {
            for chunk_rows in [1usize, (n / 3).max(2), n, 2 * n] {
                for threads in [1usize, 2] {
                    let got = streamed(
                        &x0,
                        &errors,
                        &config(eval, CompactKernel::Off, threads, chunk_rows),
                    );
                    prop_assert_eq!(
                        &got, &base,
                        "streamed {:?} chunk={} x{} diverged", eval, chunk_rows, threads
                    );
                }
            }
        }
    }

    /// Compaction parity transitivity: the in-memory path with
    /// compaction on equals the streamed path (compaction forced off).
    #[test]
    fn streamed_matches_compacted_in_memory((x0, errors) in dataset_strategy()) {
        let compacted = fingerprint(
            &SliceLine::new(config(EvalKernel::default(), CompactKernel::On, 1, 0))
                .find_slices(&x0, &errors)
                .unwrap(),
        );
        let got = streamed(&x0, &errors, &config(EvalKernel::default(), CompactKernel::Off, 1, 6));
        prop_assert_eq!(&got, &compacted, "streamed vs compacted in-memory diverged");
    }
}
