//! Integration tests for the unified execution layer: results must be
//! invariant to buffer reuse, kernel choice, and thread count, and the
//! telemetry counters must agree with the run statistics.

use sliceline::{EvalKernel, SliceLine, SliceLineConfig, SliceLineResult};
use sliceline_frame::IntMatrix;
use sliceline_linalg::ExecContext;

/// Deterministic std-only generator (SplitMix64) so the tests do not
/// depend on the `rand` crate's exact stream.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A random 200×6 categorical dataset with errors concentrated in one
/// feature conjunction, so slice finding has real structure to recover.
fn dataset(seed: u64) -> (IntMatrix, Vec<f64>) {
    let mut rng = Lcg(seed);
    let n = 200;
    let m = 6;
    let mut rows = Vec::with_capacity(n);
    let mut errors = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<u32> = (0..m)
            .map(|j| 1 + rng.gen_range(2 + j as u64) as u32)
            .collect();
        let bad = row[0] == 1 && row[1] == 2;
        let noise = rng.gen_range(1000) as f64 / 1000.0;
        errors.push(if bad { 0.8 + 0.2 * noise } else { 0.1 * noise });
        rows.push(row);
    }
    (IntMatrix::from_rows(&rows).unwrap(), errors)
}

fn config(eval: EvalKernel, threads: usize) -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(5)
        .alpha(0.9)
        .min_support(8)
        .max_level(4)
        .eval(eval)
        .threads(threads)
        .build()
        .unwrap()
}

fn assert_same_result(a: &SliceLineResult, b: &SliceLineResult, what: &str) {
    assert_eq!(a.top_k.len(), b.top_k.len(), "{what}: top-k length differs");
    for (sa, sb) in a.top_k.iter().zip(&b.top_k) {
        assert_eq!(sa.predicates, sb.predicates, "{what}: predicates differ");
        assert!(
            (sa.score - sb.score).abs() < 1e-9,
            "{what}: score {} vs {}",
            sa.score,
            sb.score
        );
        assert_eq!(sa.size, sb.size, "{what}: size differs");
    }
}

#[test]
fn reused_buffers_match_fresh_allocation() {
    let (x0, errors) = dataset(7);
    let cfg = config(EvalKernel::Blocked { block_size: 16 }, 1);
    let finder = SliceLine::new(cfg.clone());

    // Fresh context per run (pooling disabled → every buffer allocated).
    let fresh_exec = cfg.exec_context();
    fresh_exec.set_pooling(false);
    let fresh = finder.find_slices_in(&x0, &errors, &fresh_exec).unwrap();
    assert_eq!(fresh_exec.pool_stats().f64_reused, 0);

    // One shared context run three times: runs 2 and 3 hit the warm pool.
    let shared = cfg.exec_context();
    let mut last = None;
    for run in 0..3 {
        let result = finder.find_slices_in(&x0, &errors, &shared).unwrap();
        assert_same_result(&fresh, &result, &format!("pooled run {run}"));
        last = Some(result);
    }
    let pool = shared.pool_stats();
    assert!(pool.f64_reused > 0, "warm pool served no buffers: {pool:?}");
    assert!(pool.bytes_reused > 0);
    assert!(!last.unwrap().top_k.is_empty(), "planted slice not found");
}

#[test]
fn blocked_and_fused_kernels_agree_on_shared_context() {
    let (x0, errors) = dataset(11);
    let exec = ExecContext::serial();
    let blocked = SliceLine::new(config(EvalKernel::Blocked { block_size: 8 }, 1))
        .find_slices_in(&x0, &errors, &exec)
        .unwrap();
    // Same context reused across kernels: fused must see clean buffers.
    let fused = SliceLine::new(config(EvalKernel::Fused, 1))
        .find_slices_in(&x0, &errors, &exec)
        .unwrap();
    assert!(!blocked.top_k.is_empty());
    assert_same_result(&blocked, &fused, "blocked vs fused");
}

#[test]
fn serial_and_four_threads_agree() {
    let (x0, errors) = dataset(23);
    let serial = SliceLine::new(config(EvalKernel::default(), 1))
        .find_slices(&x0, &errors)
        .unwrap();
    let parallel = SliceLine::new(config(EvalKernel::default(), 4))
        .find_slices(&x0, &errors)
        .unwrap();
    assert!(!serial.top_k.is_empty());
    assert_same_result(&serial, &parallel, "serial vs 4 threads");
}

#[test]
fn telemetry_counters_sum_to_run_stats() {
    let (x0, errors) = dataset(42);
    let cfg = config(EvalKernel::default(), 1);
    let exec = cfg.exec_context();
    exec.enable_stats(true);
    let result = SliceLine::new(cfg)
        .find_slices_in(&x0, &errors, &exec)
        .unwrap();

    let stats = result
        .stats
        .exec
        .as_ref()
        .expect("stats enabled → exec telemetry present");
    assert_eq!(
        stats.levels.len(),
        result.stats.levels.len(),
        "one telemetry profile per enumerated level"
    );
    let evaluated: u64 = stats.levels.iter().map(|l| l.evaluated).sum();
    assert_eq!(
        evaluated,
        result.stats.total_evaluated() as u64,
        "per-level evaluated counters must sum to the run total"
    );
    for profile in &stats.levels {
        assert!(
            profile.evaluated
                <= profile.candidates
                    - profile.deduped
                    - profile.pruned_size
                    - profile.pruned_score
                    - profile.pruned_parents,
            "level {}: evaluated {} exceeds surviving candidates",
            profile.level,
            profile.evaluated
        );
    }
    // Levels past the first that evaluated anything chose a kernel.
    for profile in stats
        .levels
        .iter()
        .filter(|l| l.level > 1 && l.evaluated > 0)
    {
        assert!(
            profile.kernel.is_some(),
            "level {} has no kernel",
            profile.level
        );
    }
}

#[test]
fn stats_disabled_by_default_and_resettable() {
    let (x0, errors) = dataset(5);
    let cfg = config(EvalKernel::default(), 1);
    let exec = cfg.exec_context();
    let result = SliceLine::new(cfg)
        .find_slices_in(&x0, &errors, &exec)
        .unwrap();
    assert!(result.stats.exec.is_none(), "telemetry must be opt-in");
    assert!(exec.exec_stats().levels.is_empty());
}
