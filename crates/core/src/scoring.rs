//! The scoring function (Definition 1, Eq. 1/5) and its upper bound
//! (Eq. 3).
//!
//! For a slice `S` of size `|S|` with total error `se` on a dataset of `n`
//! rows with average error `ē`:
//!
//! ```text
//! sc = α · ( (se / |S|) / ē − 1 ) − (1 − α) · ( n / |S| − 1 )
//! ```
//!
//! Properties the tests pin down:
//! * `sc(X) = 0` for the full dataset regardless of `α`,
//! * at `α = 0.5` a slice with twice the relative error but half the size
//!   of another scores identically,
//! * the upper bound of Eq. 3 dominates the score of every reachable child
//!   slice (admissibility — the exactness of SliceLine rests on this).

/// Precomputed dataset-level quantities used by every score evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringContext {
    /// Number of rows `n`.
    pub n: f64,
    /// Total error `Σ e_i`.
    pub total_error: f64,
    /// Average error `ē = Σ e_i / n`.
    pub avg_error: f64,
    /// Error/size weight `α ∈ (0, 1]`.
    pub alpha: f64,
}

impl ScoringContext {
    /// Builds a context from the error vector and `α`.
    pub fn new(errors: &[f64], alpha: f64) -> Self {
        let n = errors.len() as f64;
        let total_error: f64 = errors.iter().sum();
        ScoringContext {
            n,
            total_error,
            avg_error: if n > 0.0 { total_error / n } else { 0.0 },
            alpha,
        }
    }

    /// Scores a slice with `size` rows and total error `err` (Eq. 1/5).
    ///
    /// Empty slices score `-∞` (the paper assumes a negative score for
    /// them; `-∞` is equivalent for pruning and top-K purposes and avoids
    /// the arbitrary `max(|S|, 1)` substitution).
    pub fn score(&self, size: f64, err: f64) -> f64 {
        if size <= 0.0 || self.total_error <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let rel_err = (err / size) / self.avg_error;
        self.alpha * (rel_err - 1.0) - (1.0 - self.alpha) * (self.n / size - 1.0)
    }

    /// Scores each `(size, err)` pair, writing into a fresh vector.
    pub fn score_all(&self, sizes: &[f64], errs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(sizes.len());
        self.score_all_into(sizes, errs, &mut out);
        out
    }

    /// Like [`ScoringContext::score_all`] but writing into a caller-owned
    /// buffer (cleared first), so a pooled scratch vector can be reused
    /// across levels.
    pub fn score_all_into(&self, sizes: &[f64], errs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            sizes
                .iter()
                .zip(errs.iter())
                .map(|(&s, &e)| self.score(s, e)),
        );
    }

    /// Upper-bounds the score of any slice reachable below a lattice node
    /// with size bound `⌈|S|⌉ = ss_ub`, total-error bound `⌈se⌉ = se_ub`
    /// and max-tuple-error bound `⌈sm⌉ = sm_ub`, under minimum support
    /// `σ` (Eq. 3).
    ///
    /// The bound maximizes the relaxed score over `|S| ∈ [σ, ss_ub]` with
    /// feasible error `min(se_ub, |S| · sm_ub)`. The relaxation is
    /// piecewise monotone in `|S|`, so the maximum is attained at one of
    /// the "interesting points" `σ`, `max(se_ub/sm_ub, σ)`, or `ss_ub`
    /// (§3.1).
    pub fn score_upper_bound(&self, ss_ub: f64, se_ub: f64, sm_ub: f64, sigma: usize) -> f64 {
        let sigma = sigma.max(1) as f64;
        if ss_ub < sigma || self.total_error <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let mut best = f64::NEG_INFINITY;
        let mut eval = |s: f64| {
            let feasible_err = se_ub.min(s * sm_ub);
            let sc = self.score(s, feasible_err);
            if sc > best {
                best = sc;
            }
        };
        eval(sigma);
        eval(ss_ub);
        if sm_ub > 0.0 {
            let breakpoint = (se_ub / sm_ub).clamp(sigma, ss_ub);
            eval(breakpoint);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(alpha: f64) -> ScoringContext {
        // 100 rows, total error 50, average 0.5.
        ScoringContext {
            n: 100.0,
            total_error: 50.0,
            avg_error: 0.5,
            alpha,
        }
    }

    #[test]
    fn full_dataset_scores_zero_for_any_alpha() {
        for alpha in [0.1, 0.5, 0.95, 1.0] {
            let c = ctx(alpha);
            let sc = c.score(100.0, 50.0);
            assert!(sc.abs() < 1e-12, "alpha={alpha}: sc={sc}");
        }
    }

    #[test]
    fn balance_at_alpha_half() {
        // At α = 0.5 the error and size terms are weighted equally: a unit
        // increase of the relative-error ratio se̅/ē buys exactly a unit
        // increase of the size ratio n/|S|. Pin the formula down at a few
        // hand-computed points.
        let c = ctx(0.5);
        // rel = 2, n/|S| = 2 -> 0.5·1 − 0.5·1 = 0.
        assert!(c.score(50.0, 50.0).abs() < 1e-12);
        // rel = 2, n/|S| = 2.5 -> 0.5·1 − 0.5·1.5 = −0.25.
        assert!((c.score(40.0, 40.0) - (-0.25)).abs() < 1e-12);
        // rel = 4, n/|S| = 5 -> 0.5·3 − 0.5·4 = −0.5.
        assert!((c.score(20.0, 40.0) - (-0.5)).abs() < 1e-12);
        // Trading +1 rel for +1 size ratio keeps the score: rel 3, n/|S| 3.
        let base = c.score(50.0, 50.0);
        let traded = c.score(100.0 / 3.0, (100.0 / 3.0) * 0.5 * 3.0);
        assert!((base - traded).abs() < 1e-12);
    }

    #[test]
    fn no_positive_scores_at_alpha_below_half() {
        // Analytic property: se̅/ē = (se/e_tot)·(n/|S|) ≤ n/|S| because a
        // slice cannot hold more than the total error, so
        // sc ≤ (2α−1)(n/|S|−1) ≤ 0 whenever α ≤ 0.5. The paper's α ∈ (0,1]
        // sweep therefore cannot return qualifying slices below α = 0.5 —
        // the exact top-K is empty there (observed in the Fig. 5 harness).
        for alpha in [0.1, 0.36, 0.5] {
            let c = ctx(alpha);
            for size in [1.0, 10.0, 50.0, 99.0] {
                for err_share in [0.1, 0.5, 1.0] {
                    let sc = c.score(size, c.total_error * err_share);
                    assert!(
                        sc <= 1e-12,
                        "alpha={alpha} size={size} share={err_share}: sc={sc}"
                    );
                }
            }
        }
    }

    #[test]
    fn alpha_zero_limit_makes_scores_nonpositive() {
        // For α→0 (all weight on size), no slice smaller than X reaches 0.
        let c = ctx(1e-9);
        assert!(c.score(99.0, 99.0) < 0.0);
        assert!(c.score(50.0, 50.0) < 0.0);
        assert!(c.score(100.0, 50.0).abs() < 1e-6);
    }

    #[test]
    fn empty_slice_is_negative_infinity() {
        let c = ctx(0.95);
        assert_eq!(c.score(0.0, 0.0), f64::NEG_INFINITY);
        assert_eq!(c.score(-1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn zero_total_error_scores_neg_inf() {
        let c = ScoringContext::new(&[0.0, 0.0], 0.95);
        assert_eq!(c.score(1.0, 0.0), f64::NEG_INFINITY);
        assert_eq!(c.score_upper_bound(2.0, 1.0, 1.0, 1), f64::NEG_INFINITY);
    }

    #[test]
    fn context_from_errors() {
        let c = ScoringContext::new(&[1.0, 3.0], 0.5);
        assert_eq!(c.n, 2.0);
        assert_eq!(c.total_error, 4.0);
        assert_eq!(c.avg_error, 2.0);
        let empty = ScoringContext::new(&[], 0.5);
        assert_eq!(empty.avg_error, 0.0);
    }

    #[test]
    fn score_all_matches_scalar() {
        let c = ctx(0.95);
        let sizes = [10.0, 20.0, 0.0];
        let errs = [9.0, 5.0, 0.0];
        let v = c.score_all(&sizes, &errs);
        for i in 0..3 {
            assert_eq!(v[i], c.score(sizes[i], errs[i]));
        }
    }

    #[test]
    fn upper_bound_below_support_is_neg_inf() {
        let c = ctx(0.95);
        assert_eq!(c.score_upper_bound(5.0, 10.0, 1.0, 10), f64::NEG_INFINITY);
    }

    #[test]
    fn upper_bound_dominates_feasible_scores_brute_force() {
        // Admissibility: for every feasible (size, err) with
        // σ ≤ size ≤ ss_ub and err ≤ min(se_ub, size·sm_ub), the bound must
        // dominate the score.
        let c = ctx(0.95);
        let cases = [
            (40.0, 30.0, 1.0, 5usize),
            (40.0, 30.0, 0.5, 5),
            (100.0, 50.0, 2.0, 1),
            (12.0, 1.0, 0.05, 3),
            (60.0, 10.0, 10.0, 10),
        ];
        for &(ss_ub, se_ub, sm_ub, sigma) in &cases {
            let ub = c.score_upper_bound(ss_ub, se_ub, sm_ub, sigma);
            let mut s = sigma as f64;
            while s <= ss_ub {
                // The densest feasible error for this size.
                let e_max = se_ub.min(s * sm_ub);
                // Sample a few feasible errors.
                for frac in [0.0, 0.25, 0.5, 1.0] {
                    let sc = c.score(s, e_max * frac);
                    assert!(
                        sc <= ub + 1e-9,
                        "violation: sc({s}, {}) = {sc} > ub = {ub} \
                         (ss_ub={ss_ub}, se_ub={se_ub}, sm_ub={sm_ub}, sigma={sigma})",
                        e_max * frac
                    );
                }
                s += 1.0;
            }
        }
    }

    #[test]
    fn upper_bound_handles_zero_max_error() {
        let c = ctx(0.95);
        // sm_ub = 0 means every feasible error is 0: still a valid bound.
        let ub = c.score_upper_bound(50.0, 10.0, 0.0, 5);
        assert!(ub <= c.score(50.0, 0.0) + 1e-12);
        assert!(ub.is_finite());
    }

    #[test]
    fn tighter_parent_bounds_never_increase_ub() {
        let c = ctx(0.95);
        let loose = c.score_upper_bound(80.0, 40.0, 1.0, 5);
        let tighter_size = c.score_upper_bound(40.0, 40.0, 1.0, 5);
        let tighter_err = c.score_upper_bound(80.0, 20.0, 1.0, 5);
        let tighter_sm = c.score_upper_bound(80.0, 40.0, 0.5, 5);
        assert!(tighter_size <= loose + 1e-12);
        assert!(tighter_err <= loose + 1e-12);
        assert!(tighter_sm <= loose + 1e-12);
    }
}
