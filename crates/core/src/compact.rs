//! Adaptive level-wise input compaction (§5, dynamic input reduction).
//!
//! After each level's top-K update, the only data that can influence any
//! deeper level is:
//!
//! * **rows** covered by at least one *eligible* surviving candidate —
//!   every level-(l+1) slice is the intersection of two eligible level-l
//!   parents, so its rows are a subset of each parent's rows, and deeper
//!   descendants only shrink further;
//! * **columns** referenced by some stored slice (a current candidate or
//!   a top-K entry) — children only combine their parents' predicates.
//!
//! When the retained *row* fraction drops below the configured
//! threshold, `X`, the packed bitmaps, and the error vector are gathered
//! into a compacted index space via the pooled `linalg` gather kernels;
//! unreferenced columns are dropped by the same gather (they never
//! trigger one on their own — by the time a column loses its last
//! reference its supporting rows are usually gone already, so a
//! column-only gather would be all cost and no kernel benefit). Slice *statistics* (sizes, errors, scores) are
//! dataset-level facts and are left untouched — together with the
//! column remap applied to slice definitions and the top-K, every
//! exported number stays in the original space. The pass is a pure
//! working-set reduction: results are bit-for-bit identical to
//! compaction-off (all three eval kernels accumulate per-slice errors in
//! ascending row order, and an order-preserving gather of rows that are
//! members of no future slice leaves each accumulation sequence
//! unchanged; property-tested in `core/tests/compact_parity.rs`).

use crate::config::{CompactKernel, PruningConfig};
use crate::evaluate::EvalEngine;
use crate::init::{LevelState, ProjectedData};
use crate::scoring::ScoringContext;
use crate::topk::TopK;
use sliceline_linalg::bitmap::{csr_coverage_bounded, popcount, WORD_BITS};
use sliceline_linalg::ExecContext;

/// Working-set dimensions after a compaction stage, whether or not the
/// gather actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Rows in the working set after the stage.
    pub rows_retained: usize,
    /// Projected one-hot columns in the working set after the stage.
    pub cols_retained: usize,
    /// Whether the gather ran (false = policy off, floor not met, or
    /// retained fraction above the threshold).
    pub compacted: bool,
}

/// Runs the compaction policy for the just-finished level `lvl`:
/// computes the eligible-parent row coverage and the still-referenced
/// column set, and — when the policy and threshold say so — gathers
/// `proj.x`, `errors`, the slice definitions, the top-K and the
/// evaluation engine's bitmap state into the compacted index space.
///
/// The eligibility filter replicates `get_pair_candidates`' parent
/// filter exactly (same pruning switches, same threshold), so a row
/// outside the coverage union can never be a member of any slice
/// evaluated at a deeper level.
#[allow(clippy::too_many_arguments)]
pub fn maybe_compact(
    policy: CompactKernel,
    compact_below: f64,
    pruning: &PruningConfig,
    proj: &mut ProjectedData,
    errors: &mut Vec<f64>,
    level: &mut LevelState,
    topk: &mut TopK,
    engine: &mut EvalEngine,
    ctx: &ScoringContext,
    sigma: usize,
    lvl: usize,
    exec: &ExecContext,
) -> CompactOutcome {
    let (n, m) = proj.x.shape();
    let unchanged = CompactOutcome {
        rows_retained: n,
        cols_retained: m,
        compacted: false,
    };
    match policy {
        CompactKernel::Off => return unchanged,
        CompactKernel::On => {}
        CompactKernel::Auto { min_rows } => {
            if n < min_rows {
                return unchanged;
            }
        }
    }
    if level.is_empty() || n == 0 {
        return unchanged;
    }
    // Eligible parents — the exact filter `get_pair_candidates` applies
    // before the join (threshold already reflects this level's top-K).
    let threshold = topk.prune_threshold();
    let eligible: Vec<usize> = (0..level.len())
        .filter(|&i| {
            if (pruning.size_pruning && level.sizes[i] < sigma as f64) || level.errors[i] <= 0.0 {
                return false;
            }
            if pruning.score_pruning {
                let ub = ctx.score_upper_bound(
                    level.sizes[i],
                    level.errors[i],
                    level.max_errors[i],
                    sigma,
                );
                if ub <= threshold {
                    return false;
                }
            }
            true
        })
        .collect();
    if eligible.len() < 2 {
        // Fewer than two joinable parents: the next enumeration returns
        // nothing and the loop terminates — a gather would be pure cost.
        return unchanged;
    }
    // Row coverage: OR-reduce over the eligible parents' bitmaps when the
    // engine holds packed state for this projection (cached slice bitmaps
    // make most ORs a single word pass), otherwise one CSR counting pass.
    // The gather triggers on *row* coverage alone; columns ride along
    // once it fires. A column-only gather would re-pack `X` and the whole
    // bitmap cache to drop columns whose supporting rows are already gone
    // (zero-nnz in every kernel) — measurable cost, negligible benefit.
    // The CSR pass gets the trigger threshold as an early-exit bound:
    // once the union provably reaches it, no gather can fire and the rest
    // of the scan is skipped.
    let stop_at = ((compact_below * n as f64).ceil() as usize).min(n);
    let eligible_slices: Vec<&[u32]> = eligible
        .iter()
        .map(|&i| level.slices[i].as_slice())
        .collect();
    let cov = match engine.coverage(&proj.x, eligible_slices.iter().copied(), exec) {
        Some(cov) => cov,
        None => match csr_coverage_bounded(&proj.x, &eligible_slices, lvl, stop_at, exec) {
            Some(cov) => cov,
            None => return unchanged,
        },
    };
    let kept_rows = popcount(&cov) as usize;
    let row_frac = kept_rows as f64 / n as f64;
    if kept_rows == 0 || row_frac >= compact_below {
        exec.put_u64(cov);
        return unchanged;
    }
    // Columns still referenced by any stored slice. *All* of this level's
    // slices stay enumerable (the parent filter runs inside enumeration
    // and its counters must not change), so every slice's columns are
    // retained, plus the top-K entries' columns for result decoding.
    let mut col_kept = vec![false; m];
    for cols in &level.slices {
        for &c in cols {
            col_kept[c as usize] = true;
        }
    }
    for e in topk.entries() {
        for &c in &e.cols {
            col_kept[c as usize] = true;
        }
    }
    let cols: Vec<usize> = (0..m).filter(|&c| col_kept[c]).collect();
    // Gather. Row indices in ascending order (order-preserving, so every
    // kernel's accumulation sequence over surviving rows is unchanged).
    let mut rows = Vec::with_capacity(kept_rows);
    for (wi, &word) in cov.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            rows.push(wi * WORD_BITS + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
    let mut col_remap = vec![u32::MAX; m];
    for (new, &old) in cols.iter().enumerate() {
        col_remap[old] = new as u32;
    }
    let new_x = proj
        .x
        .select_rows_cols(&rows, &cols, exec)
        .expect("kept rows/cols come from the matrix's own index space");
    let old_x = std::mem::replace(&mut proj.x, new_x);
    old_x.recycle(exec);
    let mut new_errors = exec.take_f64(kept_rows);
    for (new_r, &old_r) in rows.iter().enumerate() {
        new_errors[new_r] = errors[old_r];
    }
    exec.put_f64(std::mem::replace(errors, new_errors));
    for cols in &mut level.slices {
        for c in cols.iter_mut() {
            *c = col_remap[*c as usize];
            debug_assert_ne!(*c, u32::MAX);
        }
    }
    topk.remap_cols(&col_remap);
    proj.col_feature = cols.iter().map(|&c| proj.col_feature[c]).collect();
    proj.col_code = cols.iter().map(|&c| proj.col_code[c]).collect();
    proj.orig_col = cols.iter().map(|&c| proj.orig_col[c]).collect();
    engine.compact((n, m), &cov, kept_rows, &cols, &col_remap, exec);
    exec.put_u64(cov);
    CompactOutcome {
        rows_retained: kept_rows,
        cols_retained: cols.len(),
        compacted: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvalKernel, SliceLineConfig};
    use crate::evaluate::evaluate_slices_with;
    use crate::init::create_and_score_basic_slices;
    use crate::prepare::prepare;
    use sliceline_frame::IntMatrix;

    /// 12 rows over 2 features; rows 8..12 hold values (in *both*
    /// features) that carry no error, so their basic slices are dropped
    /// at projection and coverage shrinks to the first 8 rows.
    fn fixture() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..12u32 {
            if i < 8 {
                rows.push(vec![1 + (i % 2), 1 + (i / 4)]);
                errors.push(1.0 + (i % 3) as f64);
            } else {
                rows.push(vec![3, 3]);
                errors.push(0.0);
            }
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn setup(
        exec: &ExecContext,
    ) -> (
        ProjectedData,
        LevelState,
        Vec<f64>,
        ScoringContext,
        usize,
        TopK,
    ) {
        let (x0, e) = fixture();
        let cfg = SliceLineConfig::builder().min_support(2).build().unwrap();
        let p = prepare(&x0, &e, &cfg, exec).unwrap();
        let (proj, level) = create_and_score_basic_slices(&p, exec);
        let mut topk = TopK::new(4, p.sigma);
        topk.update(&level);
        (proj, level, p.errors.clone(), p.ctx, p.sigma, topk)
    }

    #[test]
    fn off_and_small_auto_do_not_gather() {
        let exec = ExecContext::serial();
        let (mut proj, mut level, mut errors, ctx, sigma, mut topk) = setup(&exec);
        let mut engine = EvalEngine::default();
        for policy in [
            CompactKernel::Off,
            CompactKernel::Auto { min_rows: 1 << 20 },
        ] {
            let out = maybe_compact(
                policy,
                0.99,
                &PruningConfig::default(),
                &mut proj,
                &mut errors,
                &mut level,
                &mut topk,
                &mut engine,
                &ctx,
                sigma,
                1,
                &exec,
            );
            assert!(!out.compacted);
            assert_eq!(out.rows_retained, 12);
        }
        assert_eq!(proj.x.rows(), 12);
    }

    #[test]
    fn on_gathers_uncovered_rows_and_columns() {
        let exec = ExecContext::serial();
        let (mut proj, mut level, mut errors, ctx, sigma, mut topk) = setup(&exec);
        let m_before = proj.x.cols();
        let mut engine = EvalEngine::default();
        let out = maybe_compact(
            CompactKernel::On,
            1.0,
            &PruningConfig::default(),
            &mut proj,
            &mut errors,
            &mut level,
            &mut topk,
            &mut engine,
            &ctx,
            sigma,
            1,
            &exec,
        );
        assert!(out.compacted, "zero-error tail rows must be dropped");
        assert_eq!(out.rows_retained, 8);
        assert_eq!(proj.x.rows(), 8);
        assert_eq!(errors.len(), 8);
        assert!(out.cols_retained <= m_before);
        assert_eq!(proj.col_feature.len(), out.cols_retained);
        // Slice statistics stay in the original space.
        assert!(level.sizes.iter().all(|&s| s >= sigma as f64));
        // Evaluating the remapped level-1 slices on the compacted input
        // reproduces the original (eligible) basic-slice statistics.
        let slices = level.slices.clone();
        let mut eng2 = EvalEngine::default();
        let re = evaluate_slices_with(
            &proj.x,
            &errors,
            slices,
            1,
            &ctx,
            EvalKernel::Fused,
            &exec,
            &mut eng2,
        );
        assert_eq!(re.sizes, level.sizes);
        assert_eq!(re.errors, level.errors);
    }
}
