//! Pure linear-algebra reference backend.
//!
//! This module implements Algorithm 1 the way the paper's DML/R scripts
//! do: every step is a composition of generic matrix operations —
//! `table`, `removeEmpty`, sparse-sparse products, selection matrices,
//! element-wise comparisons — with **no** fused kernels, inverted
//! indexes, or blocked scans. It is the analog of running SliceLine on a
//! general-purpose ML system and serves two purposes:
//!
//! 1. a readable executable specification that the optimized backend
//!    ([`crate::algorithm::SliceLine`]) is property-tested against, and
//! 2. the "unoptimized system" side of the §5.4 ML-systems comparison
//!    (R at 200.4s vs SystemDS at 5.6s on Adult): the bench harness runs
//!    both backends on the same data to reproduce that shape.

use crate::algorithm::{SliceInfo, SliceLineResult};
use crate::config::SliceLineConfig;
use crate::error::Result;
use crate::init::LevelState;
use crate::prepare::prepare;
use crate::stats::{LevelStats, RunStats};
use crate::topk::TopK;
use sliceline_linalg::agg::{col_sums_csr, row_nnz_counts};
use sliceline_linalg::spgemm::spgemm;
use sliceline_linalg::table::{selection_matrix, upper_tri_eq};
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::collections::HashMap;
use std::time::Instant;

/// Runs SliceLine using only generic linear algebra operations.
///
/// Produces the same top-K as [`crate::algorithm::SliceLine::find_slices`]
/// (verified by tests); run statistics carry coarser enumeration counters.
pub fn find_slices_reference(
    x0: &sliceline_frame::IntMatrix,
    errors: &[f64],
    config: &SliceLineConfig,
) -> Result<SliceLineResult> {
    let start = Instant::now();
    let prepared = prepare(
        x0,
        errors,
        config,
        &ExecContext::with_parallel(config.parallel),
    )?;
    let sigma = prepared.sigma as f64;
    let mut stats = RunStats {
        sigma: prepared.sigma,
        n: prepared.n(),
        m: prepared.m,
        l: prepared.l(),
        ..Default::default()
    };
    // --- Initialization (Eq. 4), expressed as aggregations on X. ---
    let lvl_start = Instant::now();
    let ss0 = col_sums_csr(&prepared.x);
    let se0 = prepared.x.vecmat(&prepared.errors)?;
    // cI and projection X <- X[, cI].
    let kept: Vec<usize> = (0..prepared.x.cols())
        .filter(|&c| ss0[c] >= sigma && se0[c] > 0.0)
        .collect();
    let x = prepared.x.select_cols(&kept)?;
    let col_feature: Vec<u32> = kept.iter().map(|&c| prepared.col_feature[c]).collect();
    let col_code: Vec<u32> = kept.iter().map(|&c| prepared.col_code[c]).collect();
    stats.basic_slices = kept.len();
    // Level-1 state: identity slices over projected columns, re-evaluated
    // via the generic evaluation product to stay within LA ops.
    let mut s_mat = identity_slices(x.cols());
    let mut level = evaluate_la(&x, &prepared.errors, &s_mat, 1, &prepared.ctx);
    let mut topk = TopK::new(config.k, prepared.sigma);
    topk.update(&level);
    stats.levels.push(LevelStats {
        level: 1,
        candidates: prepared.l(),
        valid: level.len(),
        enumeration: None,
        elapsed: lvl_start.elapsed(),
        threshold_after: topk.prune_threshold(),
        ..Default::default()
    });
    // --- Level-wise enumeration. ---
    let max_level = config.max_level.min(prepared.m);
    let mut l = 1usize;
    while !level.is_empty() && l < max_level {
        l += 1;
        let lvl_start = Instant::now();
        // Step 1: S <- removeEmpty(S * (ss >= sigma && se > 0)).
        let keep_rows: Vec<usize> = (0..level.len())
            .filter(|&i| level.sizes[i] >= sigma && level.errors[i] > 0.0)
            .collect();
        if keep_rows.len() < 2 {
            break;
        }
        let kept_sizes: Vec<f64> = keep_rows.iter().map(|&i| level.sizes[i]).collect();
        let kept_errs: Vec<f64> = keep_rows.iter().map(|&i| level.errors[i]).collect();
        let kept_sms: Vec<f64> = keep_rows.iter().map(|&i| level.max_errors[i]).collect();
        let s_prev = s_mat.select_rows(&keep_rows)?;
        // Step 2 (Eq. 6): I = upper.tri((S Sᵀ) == (L-2)).
        let overlap = spgemm(&s_prev, &s_prev.transpose())?;
        let pairs = upper_tri_eq(&overlap, (l - 2) as f64)?;
        // Step 3: extraction matrices P1, P2 and merged slices
        // P = ((P1 S) + (P2 S)) != 0.
        if pairs.is_empty() {
            stats.levels.push(LevelStats {
                level: l,
                candidates: 0,
                valid: 0,
                enumeration: None,
                elapsed: lvl_start.elapsed(),
                threshold_after: topk.prune_threshold(),
                ..Default::default()
            });
            break;
        }
        let rix: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
        let cix: Vec<usize> = pairs.iter().map(|&(_, b)| b).collect();
        let p1 = selection_matrix(&rix, s_prev.rows())?;
        let p2 = selection_matrix(&cix, s_prev.rows())?;
        let merged = binarize(
            &spgemm(&p1, &s_prev)?
                .to_dense()
                .add(&spgemm(&p2, &s_prev)?.to_dense())?,
        );
        // Step 4: discard slices with multiple assignments per feature:
        // rowSums(P[, beg:end]) <= 1 for every feature.
        let valid_rows: Vec<usize> = (0..merged.rows())
            .filter(|&r| feature_valid_row(&merged, r, &col_feature))
            .collect();
        let merged = merged.select_rows(&valid_rows)?;
        let pair_of_row: Vec<(usize, usize)> = valid_rows.iter().map(|&r| pairs[r]).collect();
        // Dedup via grouping identical rows (the paper's ID + recode step).
        let mut groups: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for r in 0..merged.rows() {
            groups
                .entry(merged.row_cols(r).to_vec())
                .or_default()
                .push(r);
        }
        // Candidate pruning (Eqs. 7–9) using min over all parents.
        let threshold = topk.prune_threshold();
        let mut survivors: Vec<Vec<u32>> = Vec::new();
        let mut num_dedup = 0usize;
        for (cols, rows) in groups {
            num_dedup += 1;
            let mut parents: Vec<usize> = Vec::new();
            for &r in &rows {
                let (a, b) = pair_of_row[r];
                if !parents.contains(&a) {
                    parents.push(a);
                }
                if !parents.contains(&b) {
                    parents.push(b);
                }
            }
            let ss_ub = parents
                .iter()
                .map(|&p| kept_sizes[p])
                .fold(f64::INFINITY, f64::min);
            let se_ub = parents
                .iter()
                .map(|&p| kept_errs[p])
                .fold(f64::INFINITY, f64::min);
            let sm_ub = parents
                .iter()
                .map(|&p| kept_sms[p])
                .fold(f64::INFINITY, f64::min);
            if config.pruning.size_pruning && ss_ub < sigma {
                continue;
            }
            if config.pruning.parent_handling && config.pruning.deduplication && parents.len() != l
            {
                continue;
            }
            if config.pruning.score_pruning {
                let ub = prepared
                    .ctx
                    .score_upper_bound(ss_ub, se_ub, sm_ub, prepared.sigma);
                if ub <= threshold {
                    continue;
                }
            }
            survivors.push(cols);
        }
        survivors.sort_unstable();
        // Step 5: evaluate all surviving candidates (Eq. 10) via the
        // generic matrix product I = ((X Sᵀ) == L).
        s_mat = CsrMatrix::from_binary_rows(x.cols(), &survivors)
            .expect("survivor column lists are sorted and in range");
        let candidates = survivors.len();
        level = evaluate_la(&x, &prepared.errors, &s_mat, l, &prepared.ctx);
        topk.update(&level);
        stats.levels.push(LevelStats {
            level: l,
            candidates,
            valid: (0..level.len())
                .filter(|&i| level.sizes[i] >= sigma && level.errors[i] > 0.0)
                .count(),
            enumeration: None,
            elapsed: lvl_start.elapsed(),
            threshold_after: topk.prune_threshold(),
            ..Default::default()
        });
        let _ = num_dedup;
    }
    stats.total_elapsed = start.elapsed();
    let top_k = topk
        .entries()
        .iter()
        .map(|e| {
            let mut predicates: Vec<(usize, u32)> = e
                .cols
                .iter()
                .map(|&c| (col_feature[c as usize] as usize, col_code[c as usize]))
                .collect();
            predicates.sort_unstable();
            SliceInfo {
                predicates,
                score: e.score,
                size: e.size,
                error: e.error,
                max_error: e.max_error,
                avg_error: if e.size > 0.0 { e.error / e.size } else { 0.0 },
            }
        })
        .collect();
    Ok(SliceLineResult { top_k, stats })
}

/// Identity slice matrix: one single-predicate slice per projected column.
fn identity_slices(cols: usize) -> CsrMatrix {
    let rows: Vec<Vec<u32>> = (0..cols as u32).map(|c| vec![c]).collect();
    CsrMatrix::from_binary_rows(cols, &rows).expect("identity layout is valid")
}

/// Generic-LA slice evaluation: `I = ((X Sᵀ) == L)` then column
/// aggregations (Eq. 10), computed with `spgemm` and dense scans — no
/// fused kernels.
fn evaluate_la(
    x: &CsrMatrix,
    errors: &[f64],
    s: &CsrMatrix,
    level: usize,
    ctx: &crate::scoring::ScoringContext,
) -> LevelState {
    let k = s.rows();
    if k == 0 {
        return LevelState::default();
    }
    let product = spgemm(x, &s.transpose()).expect("shapes align by construction");
    // I = (product == L) as a sparse indicator (L >= 1 is never zero).
    let indicator = sliceline_linalg::table::eq_scalar_sparse(&product, level as f64)
        .expect("level is positive");
    let sizes = col_sums_csr(&indicator);
    let errs = indicator
        .vecmat(errors)
        .expect("indicator rows equal error length");
    // sm = colMaxs(I * e).
    let mut max_errs = vec![0.0; k];
    #[allow(clippy::needless_range_loop)]
    for r in 0..indicator.rows() {
        let e = errors[r];
        for &c in indicator.row_cols(r) {
            if e > max_errs[c as usize] {
                max_errs[c as usize] = e;
            }
        }
    }
    let slices: Vec<Vec<u32>> = (0..k).map(|r| s.row_cols(r).to_vec()).collect();
    let scores = ctx.score_all(&sizes, &errs);
    LevelState {
        slices,
        sizes,
        errors: errs,
        max_errors: max_errs,
        scores,
    }
}

fn binarize(m: &sliceline_linalg::DenseMatrix) -> CsrMatrix {
    CsrMatrix::from_dense(&m.map(|v| if v != 0.0 { 1.0 } else { 0.0 }))
}

fn feature_valid_row(m: &CsrMatrix, row: usize, col_feature: &[u32]) -> bool {
    let cols = m.row_cols(row);
    cols.windows(2)
        .all(|w| col_feature[w[0] as usize] != col_feature[w[1] as usize])
}

/// `rowSums(M != 0)` helper re-exported for tests.
#[allow(dead_code)]
fn row_counts(m: &CsrMatrix) -> Vec<usize> {
    row_nnz_counts(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SliceLine;
    use crate::config::SliceLineConfig;
    use sliceline_frame::IntMatrix;

    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..24u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 3);
            let f2 = 1 + ((i / 6) % 2);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 2 && f1 == 3 { 2.0 } else { 0.1 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config() -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.9)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn reference_matches_optimized_backend() {
        let (x0, e) = planted();
        let reference = find_slices_reference(&x0, &e, &config()).unwrap();
        let optimized = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        assert_eq!(reference.top_k, optimized.top_k);
    }

    #[test]
    fn reference_finds_planted_slice() {
        let (x0, e) = planted();
        let r = find_slices_reference(&x0, &e, &config()).unwrap();
        assert_eq!(r.top_k[0].predicates, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn reference_respects_max_level() {
        let (x0, e) = planted();
        let mut c = config();
        c.max_level = 1;
        let r = find_slices_reference(&x0, &e, &c).unwrap();
        assert!(r.top_k.iter().all(|s| s.predicates.len() == 1));
        assert_eq!(r.stats.max_level(), 1);
    }

    #[test]
    fn reference_handles_zero_errors() {
        let (x0, _) = planted();
        let r = find_slices_reference(&x0, &[0.0; 24], &config()).unwrap();
        assert!(r.top_k.is_empty());
    }

    #[test]
    fn identity_slices_shape() {
        let s = identity_slices(4);
        assert_eq!(s.shape(), (4, 4));
        assert_eq!(s.nnz(), 4);
        for r in 0..4 {
            assert_eq!(s.row_cols(r), &[r as u32]);
        }
    }
}
