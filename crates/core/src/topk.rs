//! Top-K maintenance (§4.5).
//!
//! After each level's evaluation, qualifying slices
//! (`sc > 0 ∧ |S| ≥ σ`) are merged with the current top-K, sorted by
//! descending score, and truncated to `K`. The K-th score `sc_k` is a
//! monotonically increasing lower bound used for score pruning (§3.2).

use crate::init::LevelState;

/// One slice in the top-K result set (projected column space).
#[derive(Debug, Clone, PartialEq)]
pub struct TopSlice {
    /// Sorted projected-column ids defining the slice.
    pub cols: Vec<u32>,
    /// Score `sc`.
    pub score: f64,
    /// Slice size `|S|`.
    pub size: f64,
    /// Total slice error `se`.
    pub error: f64,
    /// Maximum tuple error `sm`.
    pub max_error: f64,
}

/// The running top-K set.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    sigma: usize,
    entries: Vec<TopSlice>,
}

impl TopK {
    /// Creates an empty top-K with capacity `k` and support threshold
    /// `sigma`.
    pub fn new(k: usize, sigma: usize) -> Self {
        TopK {
            k,
            sigma,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// Merges a level's evaluated slices into the top-K. Returns how many
    /// slices entered the set (the last funnel stage; entries evicted later
    /// in the same merge still count as having entered).
    pub fn update(&mut self, level: &LevelState) -> usize {
        let mut entered = 0;
        for i in 0..level.len() {
            let sc = level.scores[i];
            let ss = level.sizes[i];
            // `sc > 0` written positively would admit NaN; keep the
            // negated form and tell clippy it is deliberate.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let fails_score = !(sc > 0.0);
            if fails_score || ss < self.sigma as f64 {
                continue;
            }
            // Skip exact duplicates (possible when deduplication is
            // disabled for the ablation study).
            if self.entries.iter().any(|e| e.cols == level.slices[i]) {
                continue;
            }
            if self.entries.len() == self.k {
                // Fast reject against the current minimum.
                let min = self
                    .entries
                    .last()
                    .map(|e| e.score)
                    .unwrap_or(f64::NEG_INFINITY);
                if sc <= min {
                    continue;
                }
            }
            let entry = TopSlice {
                cols: level.slices[i].clone(),
                score: sc,
                size: ss,
                error: level.errors[i],
                max_error: level.max_errors[i],
            };
            // Insert keeping descending score order (stable for ties).
            let pos = self
                .entries
                .iter()
                .position(|e| e.score < sc)
                .unwrap_or(self.entries.len());
            self.entries.insert(pos, entry);
            entered += 1;
            if self.entries.len() > self.k {
                self.entries.pop();
            }
        }
        entered
    }

    /// The current entries, sorted by descending score.
    pub fn entries(&self) -> &[TopSlice] {
        &self.entries
    }

    /// Renumbers every entry's column ids through `remap` (old projected
    /// id → new projected id) after an input-compaction pass. The remap
    /// must be defined (≠ `u32::MAX`) for every stored column and must be
    /// monotone on them, so sorted column lists stay sorted and scores,
    /// sizes and order are untouched.
    pub fn remap_cols(&mut self, remap: &[u32]) {
        for e in &mut self.entries {
            for c in &mut e.cols {
                let nc = remap[*c as usize];
                debug_assert_ne!(nc, u32::MAX, "top-K column dropped by compaction");
                *c = nc;
            }
            debug_assert!(e.cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// `true` when `K` slices have been found.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// The score-pruning threshold: the K-th best score once the set is
    /// full, otherwise 0 (the `sc > 0` constraint itself). Candidates whose
    /// upper bound does not exceed this can never enter the final top-K.
    pub fn prune_threshold(&self) -> f64 {
        if self.is_full() {
            self.entries.last().map(|e| e.score).unwrap_or(0.0).max(0.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(slices: Vec<Vec<u32>>, scores: Vec<f64>, sizes: Vec<f64>) -> LevelState {
        let n = slices.len();
        LevelState {
            slices,
            sizes,
            errors: vec![1.0; n],
            max_errors: vec![1.0; n],
            scores,
        }
    }

    #[test]
    fn keeps_best_k_sorted() {
        let mut tk = TopK::new(2, 1);
        tk.update(&level(
            vec![vec![0], vec![1], vec![2]],
            vec![0.5, 2.0, 1.0],
            vec![5.0, 5.0, 5.0],
        ));
        assert!(tk.is_full());
        assert_eq!(tk.entries()[0].cols, vec![1]);
        assert_eq!(tk.entries()[1].cols, vec![2]);
        assert_eq!(tk.prune_threshold(), 1.0);
    }

    #[test]
    fn filters_nonpositive_scores_and_small_slices() {
        let mut tk = TopK::new(3, 10);
        tk.update(&level(
            vec![vec![0], vec![1], vec![2]],
            vec![-0.5, 0.0, 3.0],
            vec![20.0, 20.0, 5.0],
        ));
        // Negative and zero scores excluded; size 5 < sigma 10 excluded.
        assert!(tk.entries().is_empty());
        assert_eq!(tk.prune_threshold(), 0.0);
    }

    #[test]
    fn threshold_grows_monotonically() {
        let mut tk = TopK::new(1, 1);
        tk.update(&level(vec![vec![0]], vec![1.0], vec![5.0]));
        let t1 = tk.prune_threshold();
        tk.update(&level(vec![vec![1]], vec![3.0], vec![5.0]));
        let t2 = tk.prune_threshold();
        assert!(t2 >= t1);
        assert_eq!(tk.entries()[0].cols, vec![1]);
        // A worse slice never lowers the threshold.
        tk.update(&level(vec![vec![2]], vec![0.5], vec![5.0]));
        assert_eq!(tk.prune_threshold(), t2);
    }

    #[test]
    fn duplicate_columns_skipped() {
        let mut tk = TopK::new(3, 1);
        tk.update(&level(vec![vec![0, 1]], vec![2.0], vec![5.0]));
        tk.update(&level(vec![vec![0, 1]], vec![2.0], vec![5.0]));
        assert_eq!(tk.entries().len(), 1);
    }

    #[test]
    fn worse_than_kth_rejected_when_full() {
        let mut tk = TopK::new(2, 1);
        tk.update(&level(
            vec![vec![0], vec![1]],
            vec![5.0, 4.0],
            vec![5.0, 5.0],
        ));
        tk.update(&level(vec![vec![2]], vec![3.0], vec![5.0]));
        assert_eq!(tk.entries().len(), 2);
        assert!(tk.entries().iter().all(|e| e.cols != vec![2]));
        // Better one replaces the tail.
        tk.update(&level(vec![vec![3]], vec![4.5], vec![5.0]));
        assert_eq!(tk.entries()[1].cols, vec![3]);
    }

    #[test]
    fn remap_cols_renumbers_in_place() {
        let mut tk = TopK::new(3, 1);
        tk.update(&level(
            vec![vec![0, 4], vec![2]],
            vec![2.0, 1.0],
            vec![5.0, 5.0],
        ));
        // Keep columns {0, 2, 4} -> new ids {0, 1, 2}.
        let remap = vec![0, u32::MAX, 1, u32::MAX, 2];
        tk.remap_cols(&remap);
        assert_eq!(tk.entries()[0].cols, vec![0, 2]);
        assert_eq!(tk.entries()[1].cols, vec![1]);
        assert_eq!(tk.entries()[0].score, 2.0);
    }

    #[test]
    fn nan_scores_never_enter() {
        let mut tk = TopK::new(2, 1);
        tk.update(&level(vec![vec![0]], vec![f64::NAN], vec![5.0]));
        assert!(tk.entries().is_empty());
    }
}
