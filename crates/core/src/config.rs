//! Configuration: the paper's parameters `K`, `σ`, `α`, `⌈L⌉`, plus the
//! evaluation kernel (block size `b`, §4.4/§5.4) and pruning ablation
//! switches (Fig. 3).

use crate::error::{Result, SliceLineError};
use sliceline_linalg::{ExecContext, MemoryBudget, ParallelConfig, SimdKernel};

/// Minimum support threshold `σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinSupport {
    /// A fixed absolute row count.
    Absolute(usize),
    /// A fraction of `n` (the paper's experiments use `σ = n/100`).
    Fraction(f64),
    /// The paper's default `σ = max(32, n/100)`.
    PaperDefault,
}

impl MinSupport {
    /// Resolves the threshold for a dataset with `n` rows.
    pub fn resolve(&self, n: usize) -> usize {
        match *self {
            MinSupport::Absolute(s) => s,
            MinSupport::Fraction(f) => ((n as f64) * f).ceil() as usize,
            MinSupport::PaperDefault => 32.max(n / 100),
        }
    }
}

/// Which slice-evaluation kernel to use (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalKernel {
    /// The paper's hybrid formulation: blocks of `b` slices are evaluated
    /// together, materializing the `n × b` intermediate `(X Sᵀ)` as the
    /// data-parallel plan would. `b = 1` degenerates to the task-parallel
    /// plan, very large `b` to the fully data-parallel plan.
    Blocked {
        /// Block size `b` (the paper's default is 16).
        block_size: usize,
    },
    /// A fused kernel that never materializes the intermediate: one scan
    /// over `X` updates per-slice accumulators directly. Not in the paper
    /// (its LA systems must materialize operator outputs); provided as an
    /// ablation of the materialization cost.
    Fused,
    /// Packed-bitmap evaluation: each projected column of `X` is stored as
    /// a `u64` bitmap, a level-`L` slice is the `AND` of its `L` column
    /// bitmaps, sizes are popcounts and the error aggregates a masked scan.
    /// Surviving bitmaps are cached per level (byte-budgeted, see
    /// [`crate::SliceLineConfig::bitmap_cache_bytes`]) so a child usually
    /// costs a single `AND` with its one new predicate column.
    Bitmap,
    /// Per-level plan selection, mirroring SystemDS' dynamic
    /// recompilation across iterations (§5.4, Table 2 discussion): blocked
    /// evaluation for moderate candidate counts, the bitmap engine for
    /// very large ones where per-candidate cost dominates and packed
    /// `AND`/popcount (plus parent-bitmap reuse) is asymptotically better.
    Auto {
        /// Block size used when the blocked plan is chosen.
        block_size: usize,
        /// Candidate-count threshold above which the bitmap plan is
        /// chosen (named for the fused kernel it historically selected).
        fused_above: usize,
    },
}

impl Default for EvalKernel {
    fn default() -> Self {
        EvalKernel::Blocked { block_size: 16 }
    }
}

/// Which candidate-generation engine `get_pair_candidates` runs (§4.3).
///
/// Both engines stream join pairs straight out of the overlap kernel —
/// neither materializes the pair list — and produce identical candidate
/// sets and counters (property-tested in `core/tests/enum_parity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumKernel {
    /// Single-threaded streaming enumeration: one pass over the pair
    /// stream feeding one dedup table. Lowest constant factors; the right
    /// choice for the small parent counts of typical levels.
    Serial,
    /// Parallel two-phase enumeration: row-blocked workers stream join
    /// pairs into hash-sharded record buffers (shard = hash(cols) % N), then
    /// one worker per shard owns its dedup table and final Eq. 9 pruning
    /// pass — lock-free by ownership, deterministic by shard order.
    Sharded {
        /// Number of dedup shards (0 = one per worker thread).
        shards: usize,
    },
    /// Per-level choice mirroring [`EvalKernel::Auto`]: sharded when the
    /// surviving parent count reaches `sharded_above` (the join is
    /// quadratic in parents) and more than one thread is configured,
    /// serial otherwise.
    Auto {
        /// Parent-count threshold at or above which the sharded engine
        /// is chosen.
        sharded_above: usize,
    },
}

impl Default for EnumKernel {
    /// Auto with a threshold of 256 parents: below that the join is tens
    /// of thousands of pairs at most and fan-out overhead dominates.
    fn default() -> Self {
        EnumKernel::Auto { sharded_above: 256 }
    }
}

/// Adaptive level-wise input compaction policy (§5, `removeEmpty`-style
/// dynamic input reduction).
///
/// After each level's top-K update, rows covered by *no* surviving
/// candidate — and one-hot columns referenced by no stored slice — can
/// never influence deeper levels (any level-(l+1) slice is the
/// intersection of two surviving level-l candidates). When the retained
/// fraction drops below [`SliceLineConfig::compact_below`], `X`, the
/// packed bitmaps and the error vectors are gathered into a compacted
/// index space. The result is bit-for-bit identical to `Off`
/// (property-tested in `core/tests/compact_parity.rs`); only the amount
/// of data scanned changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactKernel {
    /// Never compact (every kernel scans all `n` rows at every level).
    Off,
    /// Compact at every level where the retained fraction drops below
    /// the threshold, regardless of input size.
    On,
    /// Compact only when the current working set still has at least
    /// `min_rows` rows — below that the gather costs more than the
    /// scans it saves.
    Auto {
        /// Row-count floor at or above which compaction is considered.
        min_rows: usize,
    },
}

impl Default for CompactKernel {
    /// Off: compaction is opt-in (`--compact {on,auto}`) so default runs
    /// keep the exact allocation/telemetry profile of earlier releases.
    fn default() -> Self {
        CompactKernel::Off
    }
}

impl CompactKernel {
    /// The `Auto` variant with its default 4096-row floor — tiny working
    /// sets never amortize the gather pass.
    pub fn auto() -> Self {
        CompactKernel::Auto { min_rows: 4096 }
    }
}

/// Pruning and deduplication switches for the Fig. 3 ablation study.
///
/// All switches default to **on**; disabling any of them never changes the
/// returned top-K (pruning is score-admissible), only the amount of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Size pruning: discard candidates with `⌈|S|⌉ < σ` (§3.2).
    pub size_pruning: bool,
    /// Score pruning: discard candidates with `⌈sc⌉ ≤ max(sc_k, 0)` (§3.2).
    pub score_pruning: bool,
    /// Missing-parent handling: discard candidates with fewer than `L`
    /// enumerated parents (§3.2, "Handling of Pruned Slices").
    pub parent_handling: bool,
    /// Deduplication of identical merged slices (§4.3). Disabling this
    /// reproduces the paper's out-of-memory configuration (5) on larger
    /// inputs — use only on tiny data.
    pub deduplication: bool,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            size_pruning: true,
            score_pruning: true,
            parent_handling: true,
            deduplication: true,
        }
    }
}

impl PruningConfig {
    /// All pruning on (the default).
    pub fn all() -> Self {
        Self::default()
    }

    /// Ablation (2) of Fig. 3: no missing-parent handling.
    pub fn no_parent_handling() -> Self {
        PruningConfig {
            parent_handling: false,
            ..Self::default()
        }
    }

    /// Ablation (3) of Fig. 3: no parent handling, no score pruning.
    pub fn no_score_pruning() -> Self {
        PruningConfig {
            parent_handling: false,
            score_pruning: false,
            ..Self::default()
        }
    }

    /// Ablation (4) of Fig. 3: no parent handling, no score or size pruning.
    pub fn no_size_pruning() -> Self {
        PruningConfig {
            parent_handling: false,
            score_pruning: false,
            size_pruning: false,
            ..Self::default()
        }
    }

    /// Ablation (5) of Fig. 3: nothing at all — exponential blow-up.
    pub fn none() -> Self {
        PruningConfig {
            parent_handling: false,
            score_pruning: false,
            size_pruning: false,
            deduplication: false,
        }
    }
}

/// Full SliceLine configuration. Use [`SliceLineConfig::builder`].
#[derive(Debug, Clone)]
pub struct SliceLineConfig {
    /// Number of top slices to return (paper default 4).
    pub k: usize,
    /// Minimum support threshold σ.
    pub min_support: MinSupport,
    /// Weight `α ∈ (0, 1]` of the error term in the scoring function.
    pub alpha: f64,
    /// Maximum lattice level `⌈L⌉` (clamped to `m` at run time).
    pub max_level: usize,
    /// Evaluation kernel and block size.
    pub eval: EvalKernel,
    /// Candidate-generation engine (§4.3 join + dedup + pruning).
    pub enum_kernel: EnumKernel,
    /// Pruning/deduplication ablation switches.
    pub pruning: PruningConfig,
    /// Thread configuration for parallel kernels.
    pub parallel: ParallelConfig,
    /// Byte budget for the bitmap kernel's per-level parent-bitmap cache
    /// (0 disables caching; children are then recomputed from their
    /// column bitmaps). Ignored by the blocked/fused kernels.
    pub bitmap_cache_bytes: usize,
    /// SIMD backend for the bitmap kernels: runtime auto-detection
    /// (default), forced scalar, or a forced instruction set. Selects a
    /// code path, never an answer — all levels are bit-for-bit identical.
    pub simd: SimdKernel,
    /// Adaptive input-compaction policy (see [`CompactKernel`]).
    pub compact: CompactKernel,
    /// Retained-fraction threshold below which compaction fires: the
    /// stage gathers only when `min(row_frac, col_frac) < compact_below`.
    /// Must be in `(0, 1]`; 1.0 compacts on any shrink at all.
    pub compact_below: f64,
    /// Row-block size for the out-of-core streamed path (`--chunk-rows`).
    /// 0 means "derive from the memory budget" (or a default block when
    /// the budget is unlimited). Ignored by the in-memory path.
    pub chunk_rows: usize,
    /// Soft memory budget in bytes for out-of-core execution
    /// (`--mem-budget-mb`); 0 = unlimited. Bounds the resident window of
    /// projected chunks — the excess spills to disk between levels.
    pub mem_budget_bytes: usize,
    /// Route the run through the anytime best-first engine
    /// ([`crate::priority::PrioritySliceLine`]) instead of level-wise
    /// enumeration (`--priority`). Implied by a non-zero
    /// [`Self::budget_ms`].
    pub priority: bool,
    /// Wall-clock deadline in milliseconds for the anytime engine
    /// (`--budget-ms`); 0 = unlimited. Checked between frontier batches,
    /// so a run can overshoot by at most one batch of evaluations. A
    /// non-zero value implies [`Self::priority`].
    pub budget_ms: u64,
    /// Candidate-count cap for the anytime engine (`--max-evals`): the
    /// search stops before starting a batch once this many slices have
    /// been evaluated. 0 = unlimited. Only read on the priority path.
    pub max_evals: usize,
    /// Byte cap on materialized frontier bitmaps (`--frontier-mb`);
    /// 0 = unlimited. Children that cannot be admitted are dropped and
    /// their bounds folded into the reported optimality gap, so the
    /// certificate stays sound. Only read on the priority path.
    pub frontier_bytes: usize,
    /// Nodes popped per frontier round by the anytime engine (`B`). Each
    /// round expands up to `B` bound-ordered nodes in parallel across the
    /// thread pool; budgets are re-checked between rounds. Must be ≥ 1.
    pub priority_batch: usize,
}

impl Default for SliceLineConfig {
    /// The paper's defaults: `K = 4`, `σ = max(32, n/100)`, `α = 0.95`
    /// (the value used throughout §5), `⌈L⌉ = ∞`, blocked evaluation with
    /// `b = 16`, all pruning on.
    fn default() -> Self {
        SliceLineConfig {
            k: 4,
            min_support: MinSupport::PaperDefault,
            alpha: 0.95,
            max_level: usize::MAX,
            eval: EvalKernel::default(),
            enum_kernel: EnumKernel::default(),
            pruning: PruningConfig::default(),
            parallel: ParallelConfig::default(),
            bitmap_cache_bytes: 64 << 20,
            simd: SimdKernel::default(),
            compact: CompactKernel::default(),
            compact_below: 0.7,
            chunk_rows: 0,
            mem_budget_bytes: 0,
            priority: false,
            budget_ms: 0,
            max_evals: 0,
            frontier_bytes: 0,
            priority_batch: 64,
        }
    }
}

impl SliceLineConfig {
    /// Starts a builder with the paper defaults.
    pub fn builder() -> SliceLineConfigBuilder {
        SliceLineConfigBuilder {
            config: SliceLineConfig::default(),
        }
    }

    /// Builds a fresh [`ExecContext`] (thread pool + scratch buffers +
    /// telemetry) honoring this configuration's thread count. Kernels and
    /// the level loop take `&ExecContext`, never a raw [`ParallelConfig`].
    pub fn exec_context(&self) -> ExecContext {
        ExecContext::with_parallel(self.parallel)
            .with_simd(self.simd)
            .with_budget(MemoryBudget::from_bytes(self.mem_budget_bytes))
    }

    /// `true` when this configuration routes through the anytime
    /// best-first engine: either `--priority` was requested explicitly or
    /// a deadline (`--budget-ms`) makes level-wise enumeration unable to
    /// honor the contract.
    pub fn is_priority(&self) -> bool {
        self.priority || self.budget_ms > 0
    }

    /// The compaction policy in effect after level `lvl` finishes: the
    /// configured policy, except forced [`CompactKernel::Off`] after the
    /// final level (a gather whose output no later level reads would be
    /// pure cost).
    pub fn compact_policy_at(&self, lvl: usize, max_level: usize) -> CompactKernel {
        if lvl < max_level {
            self.compact
        } else {
            CompactKernel::Off
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(SliceLineError::InvalidConfig {
                reason: "k must be at least 1".to_string(),
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(SliceLineError::InvalidConfig {
                reason: format!("alpha must be in (0, 1], got {}", self.alpha),
            });
        }
        if self.max_level == 0 {
            return Err(SliceLineError::InvalidConfig {
                reason: "max_level must be at least 1".to_string(),
            });
        }
        if let MinSupport::Fraction(f) = self.min_support {
            if !(0.0..=1.0).contains(&f) {
                return Err(SliceLineError::InvalidConfig {
                    reason: format!("min_support fraction must be in [0, 1], got {f}"),
                });
            }
        }
        match self.eval {
            EvalKernel::Blocked { block_size } | EvalKernel::Auto { block_size, .. } => {
                if block_size == 0 {
                    return Err(SliceLineError::InvalidConfig {
                        reason: "block_size must be at least 1".to_string(),
                    });
                }
            }
            EvalKernel::Fused | EvalKernel::Bitmap => {}
        }
        if let EnumKernel::Auto { sharded_above } = self.enum_kernel {
            if sharded_above == 0 {
                return Err(SliceLineError::InvalidConfig {
                    reason: "enum_kernel Auto threshold must be at least 1 \
                             (use EnumKernel::Sharded to force sharding)"
                        .to_string(),
                });
            }
        }
        if let CompactKernel::Auto { min_rows } = self.compact {
            if min_rows == 0 {
                return Err(SliceLineError::InvalidConfig {
                    reason: "compact Auto floor must be at least 1 \
                             (use CompactKernel::On to always compact)"
                        .to_string(),
                });
            }
        }
        if !(self.compact_below > 0.0 && self.compact_below <= 1.0) {
            return Err(SliceLineError::InvalidConfig {
                reason: format!(
                    "compact_below must be in (0, 1], got {}",
                    self.compact_below
                ),
            });
        }
        if self.priority_batch == 0 {
            return Err(SliceLineError::InvalidConfig {
                reason: "priority_batch must be at least 1".to_string(),
            });
        }
        if self.is_priority() && (self.chunk_rows > 0 || self.mem_budget_bytes > 0) {
            return Err(SliceLineError::InvalidConfig {
                reason: "priority mode and the out-of-core streamed path are \
                         mutually exclusive (the frontier needs resident bitmaps)"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// Builder for [`SliceLineConfig`].
#[derive(Debug, Clone)]
pub struct SliceLineConfigBuilder {
    config: SliceLineConfig,
}

impl SliceLineConfigBuilder {
    /// Sets the top-K size.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Sets an absolute minimum support.
    pub fn min_support(mut self, sigma: usize) -> Self {
        self.config.min_support = MinSupport::Absolute(sigma);
        self
    }

    /// Sets a relative minimum support `σ = ceil(fraction · n)`.
    pub fn min_support_fraction(mut self, fraction: f64) -> Self {
        self.config.min_support = MinSupport::Fraction(fraction);
        self
    }

    /// Sets the error/size weight `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the maximum lattice level `⌈L⌉`.
    pub fn max_level(mut self, level: usize) -> Self {
        self.config.max_level = level;
        self
    }

    /// Sets the evaluation kernel.
    pub fn eval(mut self, eval: EvalKernel) -> Self {
        self.config.eval = eval;
        self
    }

    /// Sets the evaluation block size (shorthand for a blocked kernel).
    pub fn block_size(mut self, b: usize) -> Self {
        self.config.eval = EvalKernel::Blocked { block_size: b };
        self
    }

    /// Sets the candidate-generation engine.
    pub fn enum_kernel(mut self, kernel: EnumKernel) -> Self {
        self.config.enum_kernel = kernel;
        self
    }

    /// Sets the pruning switches.
    pub fn pruning(mut self, pruning: PruningConfig) -> Self {
        self.config.pruning = pruning;
        self
    }

    /// Sets the byte budget of the bitmap kernel's parent cache
    /// (0 disables incremental parent reuse).
    pub fn bitmap_cache_bytes(mut self, bytes: usize) -> Self {
        self.config.bitmap_cache_bytes = bytes;
        self
    }

    /// Sets the adaptive input-compaction policy.
    pub fn compact(mut self, compact: CompactKernel) -> Self {
        self.config.compact = compact;
        self
    }

    /// Sets the retained-fraction threshold below which compaction fires.
    pub fn compact_below(mut self, threshold: f64) -> Self {
        self.config.compact_below = threshold;
        self
    }

    /// Sets the out-of-core row-block size (0 = derive from the budget).
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.config.chunk_rows = rows;
        self
    }

    /// Sets the out-of-core memory budget in bytes (0 = unlimited).
    pub fn mem_budget_bytes(mut self, bytes: usize) -> Self {
        self.config.mem_budget_bytes = bytes;
        self
    }

    /// Routes the run through the anytime best-first engine.
    pub fn priority(mut self, on: bool) -> Self {
        self.config.priority = on;
        self
    }

    /// Sets the anytime wall-clock deadline in milliseconds (0 =
    /// unlimited). A non-zero value implies priority mode.
    pub fn budget_ms(mut self, ms: u64) -> Self {
        self.config.budget_ms = ms;
        self
    }

    /// Caps the number of slices the anytime engine evaluates (0 =
    /// unlimited).
    pub fn max_evals(mut self, evals: usize) -> Self {
        self.config.max_evals = evals;
        self
    }

    /// Caps the bytes of materialized frontier bitmaps (0 = unlimited).
    pub fn frontier_bytes(mut self, bytes: usize) -> Self {
        self.config.frontier_bytes = bytes;
        self
    }

    /// Sets the number of nodes expanded per frontier round (`B`).
    pub fn priority_batch(mut self, batch: usize) -> Self {
        self.config.priority_batch = batch;
        self
    }

    /// Sets the thread configuration.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Sets the number of threads (shorthand for [`Self::parallel`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.parallel = ParallelConfig::new(threads);
        self
    }

    /// Selects the SIMD backend for the bitmap kernels (default:
    /// [`SimdKernel::Auto`] runtime detection).
    pub fn simd(mut self, simd: SimdKernel) -> Self {
        self.config.simd = simd;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SliceLineConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_support_resolution() {
        assert_eq!(MinSupport::Absolute(10).resolve(1000), 10);
        assert_eq!(MinSupport::Fraction(0.01).resolve(1000), 10);
        assert_eq!(MinSupport::Fraction(0.01).resolve(150), 2); // ceil
        assert_eq!(MinSupport::PaperDefault.resolve(1000), 32);
        assert_eq!(MinSupport::PaperDefault.resolve(10_000), 100);
    }

    #[test]
    fn builder_defaults_are_paper_defaults() {
        let c = SliceLineConfig::builder().build().unwrap();
        assert_eq!(c.k, 4);
        assert_eq!(c.alpha, 0.95);
        assert_eq!(c.eval, EvalKernel::Blocked { block_size: 16 });
        assert!(c.pruning.size_pruning && c.pruning.deduplication);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SliceLineConfig::builder().k(0).build().is_err());
        assert!(SliceLineConfig::builder().alpha(0.0).build().is_err());
        assert!(SliceLineConfig::builder().alpha(1.5).build().is_err());
        assert!(SliceLineConfig::builder().alpha(1.0).build().is_ok());
        assert!(SliceLineConfig::builder().max_level(0).build().is_err());
        assert!(SliceLineConfig::builder()
            .min_support_fraction(1.5)
            .build()
            .is_err());
        assert!(SliceLineConfig::builder().block_size(0).build().is_err());
    }

    #[test]
    fn ablation_presets() {
        assert!(PruningConfig::all().parent_handling);
        assert!(!PruningConfig::no_parent_handling().parent_handling);
        assert!(PruningConfig::no_parent_handling().score_pruning);
        let ns = PruningConfig::no_score_pruning();
        assert!(!ns.score_pruning && ns.size_pruning);
        let nz = PruningConfig::no_size_pruning();
        assert!(!nz.size_pruning && nz.deduplication);
        let none = PruningConfig::none();
        assert!(!none.deduplication && !none.size_pruning);
    }

    #[test]
    fn enum_kernel_defaults_and_validation() {
        let c = SliceLineConfig::builder().build().unwrap();
        assert_eq!(c.enum_kernel, EnumKernel::Auto { sharded_above: 256 });
        let c = SliceLineConfig::builder()
            .enum_kernel(EnumKernel::Sharded { shards: 8 })
            .build()
            .unwrap();
        assert_eq!(c.enum_kernel, EnumKernel::Sharded { shards: 8 });
        // shards = 0 means "one per thread" and is valid.
        assert!(SliceLineConfig::builder()
            .enum_kernel(EnumKernel::Sharded { shards: 0 })
            .build()
            .is_ok());
        assert!(SliceLineConfig::builder()
            .enum_kernel(EnumKernel::Auto { sharded_above: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn bitmap_kernel_and_cache_budget() {
        let c = SliceLineConfig::builder()
            .eval(EvalKernel::Bitmap)
            .bitmap_cache_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(c.eval, EvalKernel::Bitmap);
        assert_eq!(c.bitmap_cache_bytes, 1 << 20);
        // Default budget is 64 MiB; 0 (cache off) is a valid setting.
        assert_eq!(SliceLineConfig::default().bitmap_cache_bytes, 64 << 20);
        assert!(SliceLineConfig::builder()
            .eval(EvalKernel::Bitmap)
            .bitmap_cache_bytes(0)
            .build()
            .is_ok());
    }

    #[test]
    fn compact_kernel_defaults_and_validation() {
        let c = SliceLineConfig::builder().build().unwrap();
        assert_eq!(c.compact, CompactKernel::Off);
        assert_eq!(c.compact_below, 0.7);
        assert_eq!(
            CompactKernel::auto(),
            CompactKernel::Auto { min_rows: 4096 }
        );
        let c = SliceLineConfig::builder()
            .compact(CompactKernel::auto())
            .compact_below(0.5)
            .build()
            .unwrap();
        assert_eq!(c.compact, CompactKernel::Auto { min_rows: 4096 });
        assert_eq!(c.compact_below, 0.5);
        assert!(SliceLineConfig::builder()
            .compact(CompactKernel::Auto { min_rows: 0 })
            .build()
            .is_err());
        assert!(SliceLineConfig::builder()
            .compact_below(0.0)
            .build()
            .is_err());
        assert!(SliceLineConfig::builder()
            .compact_below(1.5)
            .build()
            .is_err());
        assert!(SliceLineConfig::builder()
            .compact_below(1.0)
            .build()
            .is_ok());
    }

    #[test]
    fn oocore_knobs_default_off_and_flow_to_exec() {
        let c = SliceLineConfig::builder().build().unwrap();
        assert_eq!(c.chunk_rows, 0);
        assert_eq!(c.mem_budget_bytes, 0);
        assert!(!c.exec_context().budget().is_limited());
        let c = SliceLineConfig::builder()
            .chunk_rows(4096)
            .mem_budget_bytes(64 << 20)
            .build()
            .unwrap();
        assert_eq!(c.chunk_rows, 4096);
        let exec = c.exec_context();
        assert_eq!(exec.budget().bytes(), 64 << 20);
        assert!(exec.budget().is_limited());
        assert!(exec.budget().admits(1 << 20));
        assert!(!exec.budget().admits(65 << 20));
    }

    #[test]
    fn anytime_knobs_default_off_and_validate() {
        let c = SliceLineConfig::builder().build().unwrap();
        assert!(!c.priority && !c.is_priority());
        assert_eq!(c.budget_ms, 0);
        assert_eq!(c.max_evals, 0);
        assert_eq!(c.frontier_bytes, 0);
        assert_eq!(c.priority_batch, 64);
        // A deadline implies priority mode even without the flag.
        let c = SliceLineConfig::builder().budget_ms(50).build().unwrap();
        assert!(!c.priority && c.is_priority());
        let c = SliceLineConfig::builder()
            .priority(true)
            .max_evals(1000)
            .frontier_bytes(8 << 20)
            .priority_batch(16)
            .build()
            .unwrap();
        assert!(c.is_priority());
        assert_eq!(c.max_evals, 1000);
        assert_eq!(c.frontier_bytes, 8 << 20);
        assert_eq!(c.priority_batch, 16);
        assert!(SliceLineConfig::builder()
            .priority_batch(0)
            .build()
            .is_err());
        // Priority and the out-of-core streamed path are exclusive.
        assert!(SliceLineConfig::builder()
            .priority(true)
            .chunk_rows(4096)
            .build()
            .is_err());
        assert!(SliceLineConfig::builder()
            .budget_ms(10)
            .mem_budget_bytes(1 << 20)
            .build()
            .is_err());
    }

    #[test]
    fn builder_setters() {
        let c = SliceLineConfig::builder()
            .k(7)
            .min_support(5)
            .alpha(0.5)
            .max_level(3)
            .block_size(4)
            .threads(2)
            .pruning(PruningConfig::none())
            .build()
            .unwrap();
        assert_eq!(c.k, 7);
        assert_eq!(c.min_support.resolve(100), 5);
        assert_eq!(c.max_level, 3);
        assert_eq!(c.parallel.threads(), 2);
        assert!(!c.pruning.deduplication);
    }
}
