//! Pair enumeration (§4.3): generating level-`L` candidates from the
//! evaluated level-`L−1` slices, with deduplication and all pruning
//! techniques of §3.2.
//!
//! Following Apriori's candidate join, two level-`L−1` slices combine into
//! a level-`L` candidate iff they share exactly `L−2` predicates (Eq. 6).
//! Merged candidates are checked for feature validity (at most one value
//! per original feature), deduplicated (a level-`L` slice arises from up
//! to `C(L,2)` parent pairs), and pruned using the upper bounds
//! `⌈|S|⌉`, `⌈se⌉`, `⌈sm⌉` minimized over **all** enumerated parents
//! (Eqs. 7–9).
//!
//! The deduplication here uses exact hashing of the sorted predicate-column
//! lists instead of the paper's ND-array-index slice ids + frame recoding.
//! Both map duplicate slices to one representative; hashing avoids the
//! floating-point precision ceiling of ID arithmetic on very wide domains
//! (the paper's IDs overflow doubles and need recoding; a hash table is the
//! idiomatic Rust equivalent of that recode step).
//!
//! # Engines
//!
//! Two engines implement the join → merge → dedup → prune pipeline,
//! selected by [`EnumKernel`]:
//!
//! * **Serial** — one pass over the streamed pair sequence feeding a
//!   single dedup table. Pairs are consumed straight out of the overlap
//!   kernel ([`self_overlap_pairs_stream`]) or the level-2 all-pairs loop;
//!   the `O(k²)` pair list is never materialized at any level.
//! * **Sharded** — two parallel phases. Phase A row-blocks the join:
//!   workers grab row chunks, count overlaps with a flat epoch-marked
//!   scatter array, apply pair-level bound pruning inline, and append
//!   surviving merged candidates to per-(chunk, shard) record buffers with
//!   `shard = hash(cols) % N`. Phase B assigns each shard to one worker
//!   that owns its dedup table, parent-bound accumulation and final Eq. 9
//!   pruning outright — lock-free by ownership, deterministic because
//!   chunk buffers are scanned in chunk order and shards concatenate in
//!   shard order. Identical candidate sets and counters to the serial
//!   engine (up to candidate order; property-tested in
//!   `core/tests/enum_parity.rs`).

use crate::config::{EnumKernel, PruningConfig};
use crate::init::LevelState;
use crate::scoring::ScoringContext;
use crate::topk::TopK;
use sliceline_linalg::spgemm::{
    all_pairs_stream_chunked, self_overlap_pairs_stream, self_overlap_pairs_stream_chunked,
};
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Row chunks handed to each worker thread in the sharded join, as a
/// multiple of the thread count — oversubscription so the dynamic
/// scheduler can balance the uneven per-row join costs.
const CHUNKS_PER_THREAD: usize = 8;

/// Counters describing one level's enumeration (feeds the Fig. 3/4 and
/// Table 2 experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Surviving parents after the input filter `ss ≥ σ ∧ se > 0`.
    pub parents: usize,
    /// Raw join pairs with `L−2` overlap.
    pub pairs: usize,
    /// Merged candidates that are feature-valid (before dedup).
    pub merged_valid: usize,
    /// Distinct candidates after deduplication.
    pub deduped: usize,
    /// Candidates removed by size pruning (`⌈|S|⌉ < σ`).
    pub pruned_size: usize,
    /// Candidates removed by score pruning (`⌈sc⌉ ≤ max(sc_k, 0)`).
    pub pruned_score: usize,
    /// Candidates removed by missing-parent handling (`np < L`).
    pub pruned_parents: usize,
    /// Candidates surviving all pruning (to be evaluated).
    pub survivors: usize,
    /// Wall time of the join phase (pair generation + merge + pair-level
    /// pruning + shard routing).
    pub join_time: Duration,
    /// Wall time of the dedup phase (dedup table + parent-bound
    /// accumulation + final Eq. 9 pruning).
    pub dedup_time: Duration,
}

impl EnumStats {
    /// `true` when all *counters* agree (wall-time fields are excluded —
    /// they are never comparable across runs or engines).
    pub fn same_counters(&self, other: &EnumStats) -> bool {
        self.parents == other.parents
            && self.pairs == other.pairs
            && self.merged_valid == other.merged_valid
            && self.deduped == other.deduped
            && self.pruned_size == other.pruned_size
            && self.pruned_score == other.pruned_score
            && self.pruned_parents == other.pruned_parents
            && self.survivors == other.survivors
    }
}

/// A merged candidate with parent-derived upper bounds.
///
/// When deduplication is on, `cols` is left empty during the join (the
/// dedup table owns the only copy of the column list) and moved back in
/// afterwards — the merged list is never cloned.
#[derive(Debug, Clone)]
struct Candidate {
    cols: Vec<u32>,
    /// Distinct parent indices (into the filtered parent list), sorted.
    parents: Vec<u32>,
    ss_ub: f64,
    se_ub: f64,
    sm_ub: f64,
}

impl Candidate {
    fn new(level: usize) -> Self {
        Candidate {
            cols: Vec::new(),
            parents: Vec::with_capacity(level),
            ss_ub: f64::INFINITY,
            se_ub: f64::INFINITY,
            sm_ub: f64::INFINITY,
        }
    }

    fn absorb_parent(&mut self, idx: u32, ss: f64, se: f64, sm: f64) {
        // Sorted insert: a level-L candidate absorbs up to C(L,2) pairs,
        // i.e. O(L²) absorb calls over only L distinct parents, and the
        // pair stream repeats low indices non-adjacently ((p1,p2), (p1,p3),
        // …) — so a last-element check is insufficient and a linear
        // `contains` scan is O(L) per call. Binary search keeps the list
        // sorted and the membership test O(log L).
        if let Err(pos) = self.parents.binary_search(&idx) {
            self.parents.insert(pos, idx);
        }
        if ss < self.ss_ub {
            self.ss_ub = ss;
        }
        if se < self.se_ub {
            self.se_ub = se;
        }
        if sm < self.sm_ub {
            self.sm_ub = sm;
        }
    }
}

/// Everything the join/merge/prune pipeline reads, bundled so the serial
/// closure and the sharded workers share one per-pair body.
struct JoinInputs<'a> {
    prev: &'a LevelState,
    parent_idx: &'a [usize],
    parent_slices: &'a [&'a [u32]],
    level: usize,
    col_feature: &'a [u32],
    num_cols: usize,
    ctx: &'a ScoringContext,
    sigma: usize,
    pruning: &'a PruningConfig,
    threshold: f64,
}

impl JoinInputs<'_> {
    /// Early pair-level pruning: bounds over the two generating parents
    /// only. The full-parent bounds computed after deduplication are at
    /// least as tight, so nothing prunable survives that wouldn't be
    /// pruned in the final pass — this just avoids inserting hopeless
    /// candidates into the dedup table (important for wide datasets like
    /// KDD 98 where the L=2 join produces millions of pairs).
    fn pair_prunable(&self, pa: usize, pb: usize) -> bool {
        let prev = self.prev;
        let pair_ss = prev.sizes[pa].min(prev.sizes[pb]);
        if self.pruning.size_pruning && pair_ss < self.sigma as f64 {
            return true;
        }
        if self.pruning.score_pruning {
            let pair_se = prev.errors[pa].min(prev.errors[pb]);
            let pair_sm = prev.max_errors[pa].min(prev.max_errors[pb]);
            if self
                .ctx
                .score_upper_bound(pair_ss, pair_se, pair_sm, self.sigma)
                <= self.threshold
            {
                return true;
            }
        }
        false
    }

    /// Merges parents `a` and `b` (filtered indices) into `merged`;
    /// `true` when the union has exactly `level` columns and is
    /// feature-valid.
    fn merge_valid(&self, a: usize, b: usize, merged: &mut Vec<u32>) -> bool {
        merge_sorted(self.parent_slices[a], self.parent_slices[b], merged);
        merged.len() == self.level && feature_valid(merged, self.col_feature)
    }

    fn absorb(&self, cand: &mut Candidate, parent: u32) {
        let p = self.parent_idx[parent as usize];
        cand.absorb_parent(
            parent,
            self.prev.sizes[p],
            self.prev.errors[p],
            self.prev.max_errors[p],
        );
    }

    /// The parent-slice matrix for the `L ≥ 3` overlap join (level 2
    /// streams all index pairs directly and never builds it).
    fn slice_matrix(&self) -> CsrMatrix {
        CsrMatrix::from_binary_rows(self.num_cols, self.parent_slices)
            .expect("parent slices are sorted, unique, in-range column lists")
    }

    /// Final pruning pass (Eq. 9): size, missing-parent handling, score.
    /// Folds per-rule counters into `stats` and appends survivors' column
    /// lists to `out`.
    fn prune_into(
        &self,
        candidates: Vec<Candidate>,
        stats: &mut PruneCounts,
        out: &mut Vec<Vec<u32>>,
    ) {
        for cand in candidates {
            if self.pruning.size_pruning && cand.ss_ub < self.sigma as f64 {
                stats.size += 1;
                continue;
            }
            // Missing-parent handling only makes sense on deduplicated
            // candidates (a single pair can contribute at most 2 parents).
            if self.pruning.parent_handling
                && self.pruning.deduplication
                && cand.parents.len() != self.level
            {
                stats.parents += 1;
                continue;
            }
            if self.pruning.score_pruning {
                let ub = self
                    .ctx
                    .score_upper_bound(cand.ss_ub, cand.se_ub, cand.sm_ub, self.sigma);
                if ub <= self.threshold {
                    stats.score += 1;
                    continue;
                }
            }
            out.push(cand.cols);
        }
    }
}

/// Per-rule pruning counters of one final pass (serial run or one shard).
#[derive(Debug, Default, Clone, Copy)]
struct PruneCounts {
    size: usize,
    parents: usize,
    score: usize,
}

/// Generates the level-`L` candidate slices from the evaluated level
/// `L−1`, using the engine selected by `kernel`.
///
/// `col_feature` maps each projected column to its original feature and
/// must be non-decreasing (guaranteed by the one-hot layout), so duplicate
/// features in a sorted merged column list are always adjacent.
#[allow(clippy::too_many_arguments)] // mirrors the paper's GETPAIRCANDIDATES signature
pub fn get_pair_candidates(
    prev: &LevelState,
    level: usize,
    col_feature: &[u32],
    num_cols: usize,
    ctx: &ScoringContext,
    sigma: usize,
    pruning: &PruningConfig,
    topk: &TopK,
    kernel: EnumKernel,
    exec: &ExecContext,
) -> (Vec<Vec<u32>>, EnumStats) {
    debug_assert!(level >= 2);
    let mut stats = EnumStats::default();
    let threshold = topk.prune_threshold();
    // Step 1 — filter invalid parents by min support and non-zero error.
    // The σ part belongs to size pruning (children of a slice below σ can
    // never reach σ again), so the ablation switch disables it too; the
    // zero-error part is structural (children of a zero-error slice have
    // zero error and can never score positively).
    //
    // Additionally, when score pruning is on, a parent whose *own* upper
    // bound does not beat the threshold is dropped here: the bound of
    // Eq. 3 is monotone in (⌈|S|⌉, ⌈se⌉, ⌈sm⌉), so every candidate the
    // parent could ever contribute to is bounded by the parent's bound —
    // this turns the quadratic join over thousands of parents into a join
    // over the few that still matter.
    let parent_idx: Vec<usize> = (0..prev.len())
        .filter(|&i| {
            if (pruning.size_pruning && prev.sizes[i] < sigma as f64) || prev.errors[i] <= 0.0 {
                return false;
            }
            if pruning.score_pruning {
                let ub =
                    ctx.score_upper_bound(prev.sizes[i], prev.errors[i], prev.max_errors[i], sigma);
                if ub <= threshold {
                    return false;
                }
            }
            true
        })
        .collect();
    stats.parents = parent_idx.len();
    if parent_idx.len() < 2 {
        record_enum_stats(exec, &stats, None);
        return (Vec::new(), stats);
    }
    // Borrow, don't clone: the join only reads parent column lists.
    let parent_slices: Vec<&[u32]> = parent_idx
        .iter()
        .map(|&i| prev.slices[i].as_slice())
        .collect();
    let inputs = JoinInputs {
        prev,
        parent_idx: &parent_idx,
        parent_slices: &parent_slices,
        level,
        col_feature,
        num_cols,
        ctx,
        sigma,
        pruning,
        threshold,
    };
    // Engine choice mirrors EvalKernel::Auto: the join is quadratic in
    // the parent count, so that count is the cost signal; one configured
    // thread always means serial (sharding buys nothing without workers).
    let sharded_with = match kernel {
        EnumKernel::Serial => None,
        EnumKernel::Sharded { shards } => Some(shards),
        EnumKernel::Auto { sharded_above } => {
            (exec.threads() > 1 && parent_idx.len() >= sharded_above).then_some(0)
        }
    };
    let (out, name) = match sharded_with {
        Some(shards) => (
            enumerate_sharded(&inputs, shards, exec, &mut stats),
            "sharded",
        ),
        None => (enumerate_serial(&inputs, &mut stats), "serial"),
    };
    stats.survivors = out.len();
    record_enum_stats(exec, &stats, Some(name));
    (out, stats)
}

/// Streaming single-threaded engine: consumes the pair stream inline —
/// pair-level pruning, merge, dedup and parent-bound accumulation happen
/// per emitted pair, so no pair list exists at any level (the level-2
/// all-pairs case is two nested loops, `L ≥ 3` the scatter-array overlap
/// stream).
fn enumerate_serial(inp: &JoinInputs, stats: &mut EnumStats) -> Vec<Vec<u32>> {
    let join_start = Instant::now();
    let mut dedup: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut merged = Vec::with_capacity(inp.level);
    {
        let mut handle = |a: usize, b: usize| {
            stats.pairs += 1;
            let (pa, pb) = (inp.parent_idx[a], inp.parent_idx[b]);
            if inp.pair_prunable(pa, pb) {
                return;
            }
            if !inp.merge_valid(a, b, &mut merged) {
                return;
            }
            stats.merged_valid += 1;
            let cand = if inp.pruning.deduplication {
                match dedup.get(merged.as_slice()) {
                    Some(&ix) => &mut candidates[ix],
                    None => {
                        // Move the merged list into the dedup table (its
                        // only owner until the final pruning pass); the
                        // candidate keeps an empty placeholder. `merged`
                        // re-grows on the next iteration, so no clone
                        // happens on either path.
                        let ix = candidates.len();
                        candidates.push(Candidate::new(inp.level));
                        dedup.insert(std::mem::take(&mut merged), ix);
                        &mut candidates[ix]
                    }
                }
            } else {
                let mut cand = Candidate::new(inp.level);
                cand.cols = std::mem::take(&mut merged);
                candidates.push(cand);
                let ix = candidates.len() - 1;
                &mut candidates[ix]
            };
            inp.absorb(cand, a as u32);
            inp.absorb(cand, b as u32);
        };
        if inp.level == 2 {
            // Level 2 joins single-predicate slices with zero overlap —
            // that is every index pair, streamed straight into `handle`.
            let k = inp.parent_slices.len();
            for i in 0..k {
                for j in (i + 1)..k {
                    handle(i, j);
                }
            }
        } else {
            let s = inp.slice_matrix();
            self_overlap_pairs_stream(&s, inp.level - 2, handle)
                .expect("binary slice matrix by construction");
        }
    }
    stats.join_time = join_start.elapsed();
    let dedup_start = Instant::now();
    stats.deduped = if inp.pruning.deduplication {
        candidates.len()
    } else {
        stats.merged_valid
    };
    // Hand the deduplicated column lists back to their candidates.
    if inp.pruning.deduplication {
        for (cols, ix) in dedup {
            candidates[ix].cols = cols;
        }
    }
    let mut out = Vec::with_capacity(candidates.len());
    let mut prunes = PruneCounts::default();
    inp.prune_into(candidates, &mut prunes, &mut out);
    stats.pruned_size = prunes.size;
    stats.pruned_parents = prunes.parents;
    stats.pruned_score = prunes.score;
    stats.dedup_time = dedup_start.elapsed();
    out
}

/// Per-chunk sink of the sharded join: one flat record buffer per shard
/// (records are `level` merged columns followed by the two parent
/// indices), plus the chunk's share of the pair counters and the merge
/// scratch.
struct ChunkSink {
    bufs: Vec<Vec<u32>>,
    merged: Vec<u32>,
    pairs: usize,
    merged_valid: usize,
}

/// One shard's dedup + pruning output.
#[derive(Default)]
struct ShardResult {
    survivors: Vec<Vec<u32>>,
    deduped: usize,
    prunes: PruneCounts,
}

/// FNV-1a over the merged column list — deterministic (unlike a seeded
/// `RandomState`), so shard assignment and therefore output order are
/// stable across runs.
fn hash_cols(cols: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in cols {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parallel two-phase engine (see the module docs): row-blocked streaming
/// join into hash-sharded record buffers, then one worker per shard doing
/// dedup + bounds + final pruning on data only it can touch.
fn enumerate_sharded(
    inp: &JoinInputs,
    shards: usize,
    exec: &ExecContext,
    stats: &mut EnumStats,
) -> Vec<Vec<u32>> {
    let nshards = if shards == 0 { exec.threads() } else { shards }.max(1);
    let stride = inp.level + 2;
    let k = inp.parent_slices.len();
    let n_chunks = (exec.threads() * CHUNKS_PER_THREAD).clamp(1, k);
    // Phase A — parallel streaming join. Workers never share sinks: each
    // chunk owns its buffers, so the only coordination is the chunk cursor.
    let join_start = Instant::now();
    let make = |_ci: usize| ChunkSink {
        bufs: vec![Vec::new(); nshards],
        merged: Vec::with_capacity(stride),
        pairs: 0,
        merged_valid: 0,
    };
    let emit = |sink: &mut ChunkSink, i: u32, j: u32| {
        sink.pairs += 1;
        let (a, b) = (i as usize, j as usize);
        if inp.pair_prunable(inp.parent_idx[a], inp.parent_idx[b]) {
            return;
        }
        if !inp.merge_valid(a, b, &mut sink.merged) {
            return;
        }
        sink.merged_valid += 1;
        let shard = (hash_cols(&sink.merged) % nshards as u64) as usize;
        let buf = &mut sink.bufs[shard];
        buf.extend_from_slice(&sink.merged);
        buf.push(i);
        buf.push(j);
    };
    let sinks: Vec<ChunkSink> = if inp.level == 2 {
        all_pairs_stream_chunked(k, exec, n_chunks, make, emit)
    } else {
        let s = inp.slice_matrix();
        self_overlap_pairs_stream_chunked(&s, inp.level - 2, exec, n_chunks, make, emit)
            .expect("binary slice matrix by construction")
    };
    stats.join_time = join_start.elapsed();
    for sink in &sinks {
        stats.pairs += sink.pairs;
        stats.merged_valid += sink.merged_valid;
    }
    // Phase B — dedup + final pruning, one worker per shard. Duplicate
    // column lists always hash to the same shard, so per-shard dedup is
    // exact; scanning chunk buffers in chunk order makes each shard's
    // first-seen candidate order (and thus the output) deterministic.
    let dedup_start = Instant::now();
    let shard_results: Vec<ShardResult> = exec.parallel().par_tasks(nshards, |shard| {
        let mut res = ShardResult::default();
        // Phase A already counted every record bound for this shard, so
        // (unlike the streaming serial engine) the dedup structures can be
        // sized once up front instead of rehashing through ~20 doublings
        // on large joins.
        let records: usize = sinks.iter().map(|s| s.bufs[shard].len() / stride).sum();
        let mut candidates: Vec<Candidate> = Vec::with_capacity(records);
        if inp.pruning.deduplication {
            let mut table: HashMap<Vec<u32>, usize> = HashMap::with_capacity(records);
            for sink in &sinks {
                for rec in sink.bufs[shard].chunks_exact(stride) {
                    let (cols, pair) = rec.split_at(inp.level);
                    let ix = match table.get(cols) {
                        Some(&ix) => ix,
                        None => {
                            let ix = candidates.len();
                            candidates.push(Candidate::new(inp.level));
                            table.insert(cols.to_vec(), ix);
                            ix
                        }
                    };
                    inp.absorb(&mut candidates[ix], pair[0]);
                    inp.absorb(&mut candidates[ix], pair[1]);
                }
            }
            res.deduped = candidates.len();
            for (cols, ix) in table {
                candidates[ix].cols = cols;
            }
        } else {
            for sink in &sinks {
                for rec in sink.bufs[shard].chunks_exact(stride) {
                    let (cols, pair) = rec.split_at(inp.level);
                    let mut cand = Candidate::new(inp.level);
                    cand.cols = cols.to_vec();
                    candidates.push(cand);
                    let ix = candidates.len() - 1;
                    inp.absorb(&mut candidates[ix], pair[0]);
                    inp.absorb(&mut candidates[ix], pair[1]);
                }
            }
        }
        inp.prune_into(candidates, &mut res.prunes, &mut res.survivors);
        res
    });
    let mut out = Vec::new();
    for res in shard_results {
        stats.deduped += res.deduped;
        stats.pruned_size += res.prunes.size;
        stats.pruned_parents += res.prunes.parents;
        stats.pruned_score += res.prunes.score;
        out.extend(res.survivors);
    }
    if !inp.pruning.deduplication {
        stats.deduped = stats.merged_valid;
    }
    stats.dedup_time = dedup_start.elapsed();
    out
}

/// Folds one level's enumeration counters and phase timings into the
/// execution context's telemetry (no-op when stats are disabled).
fn record_enum_stats(exec: &ExecContext, stats: &EnumStats, kernel: Option<&'static str>) {
    exec.record_level(|p| {
        p.pairs += stats.pairs as u64;
        p.candidates += stats.merged_valid as u64;
        p.deduped += (stats.merged_valid - stats.deduped) as u64;
        p.pruned_size += stats.pruned_size as u64;
        p.pruned_score += stats.pruned_score as u64;
        p.pruned_parents += stats.pruned_parents as u64;
        p.join += stats.join_time;
        p.dedup += stats.dedup_time;
        if kernel.is_some() {
            p.enum_kernel = kernel;
        }
    });
}

/// Merges two sorted, duplicate-free column lists into `out` (cleared
/// first), keeping the union sorted and duplicate-free.
fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// `true` if no two columns of the sorted list belong to the same original
/// feature. Relies on `col_feature` being non-decreasing over column ids.
fn feature_valid(cols: &[u32], col_feature: &[u32]) -> bool {
    cols.windows(2)
        .all(|w| col_feature[w[0] as usize] != col_feature[w[1] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruningConfig;

    /// Three features, each with 2 valid columns:
    /// cols 0,1 -> f0; cols 2,3 -> f1; cols 4,5 -> f2.
    const COL_FEATURE: [u32; 6] = [0, 0, 1, 1, 2, 2];

    fn level1(sizes: Vec<f64>, errors: Vec<f64>) -> LevelState {
        let n = sizes.len();
        LevelState {
            slices: (0..n as u32).map(|c| vec![c]).collect(),
            max_errors: errors.iter().map(|&e| e / 2.0).collect(),
            sizes,
            errors,
            scores: vec![1.0; n],
        }
    }

    fn ctx() -> ScoringContext {
        ScoringContext {
            n: 100.0,
            total_error: 50.0,
            avg_error: 0.5,
            alpha: 0.95,
        }
    }

    #[test]
    fn merge_sorted_unions() {
        let mut out = Vec::new();
        merge_sorted(&[0, 2], &[0, 4], &mut out);
        assert_eq!(out, vec![0, 2, 4]);
        merge_sorted(&[1], &[3], &mut out);
        assert_eq!(out, vec![1, 3]);
        merge_sorted(&[], &[5], &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn feature_validity() {
        assert!(feature_valid(&[0, 2, 4], &COL_FEATURE));
        assert!(!feature_valid(&[0, 1], &COL_FEATURE));
        assert!(!feature_valid(&[0, 2, 3], &COL_FEATURE));
        assert!(feature_valid(&[5], &COL_FEATURE));
    }

    #[test]
    fn absorb_parent_dedups_repeated_nonadjacent_indices() {
        // The pair stream of a level-3 candidate with parents {0, 1, 2} is
        // (0,1), (0,2), (1,2): parent 0 arrives twice, *not* adjacently —
        // a last-element check would double-count it.
        let mut cand = Candidate::new(3);
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 2)] {
            cand.absorb_parent(a, 10.0, 5.0, 1.0);
            cand.absorb_parent(b, 10.0, 5.0, 1.0);
        }
        assert_eq!(cand.parents, vec![0, 1, 2]);
        // Level 4: C(4,2) = 6 pairs over 4 parents, arriving in join order.
        let mut cand = Candidate::new(4);
        for (a, b) in [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            cand.absorb_parent(a, 10.0, 5.0, 1.0);
            cand.absorb_parent(b, 10.0, 5.0, 1.0);
        }
        assert_eq!(cand.parents, vec![0, 1, 2, 3]);
        // Bounds still track the minimum over all absorbed parents.
        let mut cand = Candidate::new(2);
        cand.absorb_parent(7, 10.0, 5.0, 1.0);
        cand.absorb_parent(3, 4.0, 8.0, 0.5);
        assert_eq!(cand.parents, vec![3, 7]);
        assert_eq!((cand.ss_ub, cand.se_ub, cand.sm_ub), (4.0, 5.0, 0.5));
    }

    #[test]
    fn level2_pairs_all_cross_feature() {
        let prev = level1(vec![50.0; 6], vec![25.0; 6]);
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        // C(6,2)=15 pairs, minus 3 same-feature pairs = 12 valid.
        assert_eq!(stats.pairs, 15);
        assert_eq!(stats.merged_valid, 12);
        assert_eq!(stats.deduped, 12);
        assert_eq!(cands.len(), 12);
        assert!(cands.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn parent_filter_removes_small_or_zero_error() {
        let prev = level1(
            vec![50.0, 2.0, 50.0, 50.0, 50.0, 50.0],
            vec![25.0, 25.0, 0.0, 25.0, 25.0, 25.0],
        );
        let tk = TopK::new(4, 1);
        let (_, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        // Parent 1 fails sigma, parent 2 fails zero error.
        assert_eq!(stats.parents, 4);
    }

    #[test]
    fn size_pruning_uses_min_parent_size() {
        // Parent sizes 5 and 100: candidate bound is 5 < sigma 10.
        let prev = LevelState {
            slices: vec![vec![0], vec![2]],
            sizes: vec![100.0, 100.0],
            errors: vec![50.0, 50.0],
            max_errors: vec![1.0, 1.0],
            scores: vec![1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        // Make one parent small via sizes.
        let mut small = prev.clone();
        small.sizes[1] = 5.0;
        let (cands, stats) = get_pair_candidates(
            &small,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        // Parent 1 itself fails the sigma filter, so no pairs at all.
        assert_eq!(stats.parents, 1);
        assert!(cands.is_empty());
    }

    #[test]
    fn level3_dedup_counts_parents() {
        // Level-2 slices over features f0,f1,f2: {0,2},{0,4},{2,4} all
        // share pairwise 1 column -> 3 pairs, all merging to {0,2,4}.
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4], vec![2, 4]],
            sizes: vec![50.0, 40.0, 30.0],
            errors: vec![25.0, 20.0, 15.0],
            max_errors: vec![1.0, 0.8, 0.6],
            scores: vec![1.0, 1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert_eq!(stats.pairs, 3);
        assert_eq!(stats.merged_valid, 3);
        assert_eq!(stats.deduped, 1);
        assert_eq!(cands, vec![vec![0, 2, 4]]);
    }

    #[test]
    fn missing_parent_prunes_candidate() {
        // Only 2 of the 3 parents of {0,2,4} exist: np = 2 < L = 3.
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4]],
            sizes: vec![50.0, 40.0],
            errors: vec![25.0, 20.0],
            max_errors: vec![1.0, 0.8],
            scores: vec![1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pruned_parents, 1);
        // Without parent handling the candidate survives.
        let (cands2, _) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::no_parent_handling(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert_eq!(cands2, vec![vec![0, 2, 4]]);
    }

    #[test]
    fn score_pruning_against_topk_threshold() {
        let prev = level1(vec![20.0; 6], vec![1.0; 6]);
        // Fill the top-K with very high scores so every candidate's upper
        // bound falls below the threshold.
        let mut tk = TopK::new(1, 1);
        tk.update(&LevelState {
            slices: vec![vec![9]],
            sizes: vec![50.0],
            errors: vec![50.0],
            max_errors: vec![1.0],
            scores: vec![1000.0],
        });
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pruned_score, stats.deduped);
        // With score pruning off they survive.
        let (cands2, _) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            1,
            &PruningConfig::no_score_pruning(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert_eq!(cands2.len(), 12);
    }

    #[test]
    fn parent_prefilter_drops_hopeless_parents() {
        // Parent 1 has tiny errors: its own bound cannot beat a full
        // top-K, so it is dropped before the join.
        let prev = LevelState {
            slices: vec![vec![0], vec![2], vec![4]],
            sizes: vec![50.0, 50.0, 50.0],
            errors: vec![25.0, 0.001, 25.0],
            max_errors: vec![1.0, 0.0001, 1.0],
            scores: vec![1.0, -0.9, 1.0],
        };
        let mut tk = TopK::new(1, 1);
        tk.update(&LevelState {
            slices: vec![vec![9]],
            sizes: vec![50.0],
            errors: vec![40.0],
            max_errors: vec![1.0],
            scores: vec![0.6],
        });
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        // Parents 0 and 2 have bound ≈ 0.8 > threshold 0.6 and join;
        // parent 1's bound is negative and it is dropped up front.
        assert_eq!(stats.parents, 2);
        assert_eq!(stats.pairs, 1);
        assert_eq!(cands, vec![vec![0, 4]]);
        // With score pruning disabled the weak parent participates again.
        let (_, stats2) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            10,
            &PruningConfig::no_score_pruning(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert_eq!(stats2.parents, 3);
        assert_eq!(stats2.pairs, 3);
    }

    #[test]
    fn no_dedup_keeps_duplicates() {
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4], vec![2, 4]],
            sizes: vec![50.0, 40.0, 30.0],
            errors: vec![25.0, 20.0, 15.0],
            max_errors: vec![1.0, 0.8, 0.6],
            scores: vec![1.0, 1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, _) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::none(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert_eq!(cands.len(), 3);
        assert!(cands.iter().all(|c| c == &vec![0, 2, 4]));
    }

    #[test]
    fn fewer_than_two_parents_short_circuits() {
        let prev = level1(vec![50.0], vec![25.0]);
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pairs, 0);
    }

    /// Runs serial and sharded over the same inputs and asserts identical
    /// candidate sets (up to order) and counters.
    fn assert_engines_agree(
        prev: &LevelState,
        level: usize,
        col_feature: &[u32],
        num_cols: usize,
        sigma: usize,
        pruning: &PruningConfig,
        tk: &TopK,
    ) {
        let (mut serial, serial_stats) = get_pair_candidates(
            prev,
            level,
            col_feature,
            num_cols,
            &ctx(),
            sigma,
            pruning,
            tk,
            EnumKernel::Serial,
            &ExecContext::serial(),
        );
        serial.sort_unstable();
        for threads in [1, 2, 4] {
            for shards in [0, 1, 3, 7] {
                let (mut sharded, sharded_stats) = get_pair_candidates(
                    prev,
                    level,
                    col_feature,
                    num_cols,
                    &ctx(),
                    sigma,
                    pruning,
                    tk,
                    EnumKernel::Sharded { shards },
                    &ExecContext::new(threads),
                );
                sharded.sort_unstable();
                assert_eq!(sharded, serial, "threads {threads} shards {shards}");
                assert!(
                    sharded_stats.same_counters(&serial_stats),
                    "threads {threads} shards {shards}:\n{sharded_stats:?}\n{serial_stats:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_serial_on_fixture_levels() {
        let tk = TopK::new(4, 1);
        let l1 = level1(vec![50.0, 45.0, 40.0, 35.0, 30.0, 25.0], vec![25.0; 6]);
        assert_engines_agree(&l1, 2, &COL_FEATURE, 6, 1, &PruningConfig::all(), &tk);
        assert_engines_agree(&l1, 2, &COL_FEATURE, 6, 1, &PruningConfig::none(), &tk);
        let l2 = LevelState {
            slices: vec![vec![0, 2], vec![0, 4], vec![2, 4], vec![1, 3], vec![3, 5]],
            sizes: vec![50.0, 40.0, 30.0, 20.0, 60.0],
            errors: vec![25.0, 20.0, 15.0, 10.0, 30.0],
            max_errors: vec![1.0, 0.8, 0.6, 0.4, 1.2],
            scores: vec![1.0; 5],
        };
        assert_engines_agree(&l2, 3, &COL_FEATURE, 6, 1, &PruningConfig::all(), &tk);
        assert_engines_agree(
            &l2,
            3,
            &COL_FEATURE,
            6,
            1,
            &PruningConfig::no_parent_handling(),
            &tk,
        );
    }

    #[test]
    fn auto_picks_serial_below_threshold_and_sharded_above() {
        let prev = level1(vec![50.0; 6], vec![25.0; 6]);
        let tk = TopK::new(4, 1);
        let exec = ExecContext::new(2);
        exec.enable_stats(true);
        exec.begin_level(2);
        // 6 parents < threshold 256 -> serial.
        let _ = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Auto { sharded_above: 256 },
            &exec,
        );
        assert_eq!(exec.exec_stats().levels[0].enum_kernel, Some("serial"));
        // Threshold 2 <= 6 parents -> sharded (threads > 1).
        exec.begin_level(2);
        let _ = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Auto { sharded_above: 2 },
            &exec,
        );
        assert_eq!(exec.exec_stats().levels[1].enum_kernel, Some("sharded"));
        // One thread always means serial, whatever the threshold.
        let serial_exec = ExecContext::serial();
        serial_exec.enable_stats(true);
        serial_exec.begin_level(2);
        let _ = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            EnumKernel::Auto { sharded_above: 2 },
            &serial_exec,
        );
        assert_eq!(
            serial_exec.exec_stats().levels[0].enum_kernel,
            Some("serial")
        );
    }
}
