//! Pair enumeration (§4.3): generating level-`L` candidates from the
//! evaluated level-`L−1` slices, with deduplication and all pruning
//! techniques of §3.2.
//!
//! Following Apriori's candidate join, two level-`L−1` slices combine into
//! a level-`L` candidate iff they share exactly `L−2` predicates (Eq. 6).
//! Merged candidates are checked for feature validity (at most one value
//! per original feature), deduplicated (a level-`L` slice arises from up
//! to `C(L,2)` parent pairs), and pruned using the upper bounds
//! `⌈|S|⌉`, `⌈se⌉`, `⌈sm⌉` minimized over **all** enumerated parents
//! (Eqs. 7–9).
//!
//! The deduplication here uses exact hashing of the sorted predicate-column
//! lists instead of the paper's ND-array-index slice ids + frame recoding.
//! Both map duplicate slices to one representative; hashing avoids the
//! floating-point precision ceiling of ID arithmetic on very wide domains
//! (the paper's IDs overflow doubles and need recoding; a hash table is the
//! idiomatic Rust equivalent of that recode step).

use crate::config::PruningConfig;
use crate::init::LevelState;
use crate::scoring::ScoringContext;
use crate::topk::TopK;
use sliceline_linalg::spgemm::self_overlap_pairs_eq;
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::collections::HashMap;

/// Counters describing one level's enumeration (feeds the Fig. 3/4 and
/// Table 2 experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Surviving parents after the input filter `ss ≥ σ ∧ se > 0`.
    pub parents: usize,
    /// Raw join pairs with `L−2` overlap.
    pub pairs: usize,
    /// Merged candidates that are feature-valid (before dedup).
    pub merged_valid: usize,
    /// Distinct candidates after deduplication.
    pub deduped: usize,
    /// Candidates removed by size pruning (`⌈|S|⌉ < σ`).
    pub pruned_size: usize,
    /// Candidates removed by score pruning (`⌈sc⌉ ≤ max(sc_k, 0)`).
    pub pruned_score: usize,
    /// Candidates removed by missing-parent handling (`np < L`).
    pub pruned_parents: usize,
    /// Candidates surviving all pruning (to be evaluated).
    pub survivors: usize,
}

/// A merged candidate with parent-derived upper bounds.
///
/// When deduplication is on, `cols` is left empty during the join (the
/// dedup table owns the only copy of the column list) and moved back in
/// afterwards — the merged list is never cloned.
#[derive(Debug, Clone)]
struct Candidate {
    cols: Vec<u32>,
    /// Distinct parent indices (into the filtered parent list).
    parents: Vec<u32>,
    ss_ub: f64,
    se_ub: f64,
    sm_ub: f64,
}

impl Candidate {
    fn absorb_parent(&mut self, idx: u32, ss: f64, se: f64, sm: f64) {
        if !self.parents.contains(&idx) {
            self.parents.push(idx);
        }
        if ss < self.ss_ub {
            self.ss_ub = ss;
        }
        if se < self.se_ub {
            self.se_ub = se;
        }
        if sm < self.sm_ub {
            self.sm_ub = sm;
        }
    }
}

/// Generates the level-`L` candidate slices from the evaluated level
/// `L−1`.
///
/// `col_feature` maps each projected column to its original feature and
/// must be non-decreasing (guaranteed by the one-hot layout), so duplicate
/// features in a sorted merged column list are always adjacent.
#[allow(clippy::too_many_arguments)] // mirrors the paper's GETPAIRCANDIDATES signature
pub fn get_pair_candidates(
    prev: &LevelState,
    level: usize,
    col_feature: &[u32],
    num_cols: usize,
    ctx: &ScoringContext,
    sigma: usize,
    pruning: &PruningConfig,
    topk: &TopK,
    exec: &ExecContext,
) -> (Vec<Vec<u32>>, EnumStats) {
    debug_assert!(level >= 2);
    let mut stats = EnumStats::default();
    let threshold = topk.prune_threshold();
    // Step 1 — filter invalid parents by min support and non-zero error.
    // The σ part belongs to size pruning (children of a slice below σ can
    // never reach σ again), so the ablation switch disables it too; the
    // zero-error part is structural (children of a zero-error slice have
    // zero error and can never score positively).
    //
    // Additionally, when score pruning is on, a parent whose *own* upper
    // bound does not beat the threshold is dropped here: the bound of
    // Eq. 3 is monotone in (⌈|S|⌉, ⌈se⌉, ⌈sm⌉), so every candidate the
    // parent could ever contribute to is bounded by the parent's bound —
    // this turns the quadratic join over thousands of parents into a join
    // over the few that still matter.
    let parent_idx: Vec<usize> = (0..prev.len())
        .filter(|&i| {
            if (pruning.size_pruning && prev.sizes[i] < sigma as f64) || prev.errors[i] <= 0.0 {
                return false;
            }
            if pruning.score_pruning {
                let ub =
                    ctx.score_upper_bound(prev.sizes[i], prev.errors[i], prev.max_errors[i], sigma);
                if ub <= threshold {
                    return false;
                }
            }
            true
        })
        .collect();
    stats.parents = parent_idx.len();
    if parent_idx.len() < 2 {
        record_enum_stats(exec, &stats);
        return (Vec::new(), stats);
    }
    // Borrow, don't clone: the join only reads parent column lists.
    let parent_slices: Vec<&[u32]> = parent_idx
        .iter()
        .map(|&i| prev.slices[i].as_slice())
        .collect();
    // Step 2 — join compatible slices: exactly L−2 shared predicates.
    // Level 2 joins single-predicate slices with zero overlap — that is
    // every index pair, so enumerate them directly instead of
    // materializing the O(k²) zero-overlap pair list.
    let pairs: Vec<(usize, usize)> = if level == 2 {
        let k = parent_slices.len();
        let mut all = Vec::with_capacity(k * (k - 1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                all.push((i, j));
            }
        }
        all
    } else {
        let s = CsrMatrix::from_binary_rows(num_cols, &parent_slices)
            .expect("parent slices are sorted, unique, in-range column lists");
        self_overlap_pairs_eq(&s, level - 2).expect("binary slice matrix by construction")
    };
    stats.pairs = pairs.len();
    // Steps 3–4 — merge, validate features, deduplicate, accumulate
    // parent bounds.
    let mut dedup: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut merged = Vec::with_capacity(level);
    for &(a, b) in &pairs {
        // Early pair-level pruning: bounds over the two generating parents
        // only. The full-parent bounds computed after deduplication are at
        // least as tight, so nothing prunable survives that wouldn't be
        // pruned below — this just avoids inserting hopeless candidates
        // into the dedup table (important for wide datasets like KDD 98
        // where the L=2 join produces millions of pairs).
        let (pa, pb) = (parent_idx[a], parent_idx[b]);
        let pair_ss = prev.sizes[pa].min(prev.sizes[pb]);
        if pruning.size_pruning && pair_ss < sigma as f64 {
            continue;
        }
        if pruning.score_pruning {
            let pair_se = prev.errors[pa].min(prev.errors[pb]);
            let pair_sm = prev.max_errors[pa].min(prev.max_errors[pb]);
            if ctx.score_upper_bound(pair_ss, pair_se, pair_sm, sigma) <= threshold {
                continue;
            }
        }
        merge_sorted(parent_slices[a], parent_slices[b], &mut merged);
        if merged.len() != level || !feature_valid(&merged, col_feature) {
            continue;
        }
        stats.merged_valid += 1;
        let make = |cols: Vec<u32>| Candidate {
            cols,
            parents: Vec::with_capacity(level),
            ss_ub: f64::INFINITY,
            se_ub: f64::INFINITY,
            sm_ub: f64::INFINITY,
        };
        let cand = if pruning.deduplication {
            match dedup.get(merged.as_slice()) {
                Some(&ix) => &mut candidates[ix],
                None => {
                    // Move the merged list into the dedup table (its only
                    // owner until the final pruning pass); the candidate
                    // keeps an empty placeholder. `merged` re-grows on the
                    // next iteration, so no clone happens on either path.
                    let ix = candidates.len();
                    candidates.push(make(Vec::new()));
                    dedup.insert(std::mem::take(&mut merged), ix);
                    &mut candidates[ix]
                }
            }
        } else {
            candidates.push(make(std::mem::take(&mut merged)));
            let ix = candidates.len() - 1;
            &mut candidates[ix]
        };
        cand.absorb_parent(
            a as u32,
            prev.sizes[pa],
            prev.errors[pa],
            prev.max_errors[pa],
        );
        cand.absorb_parent(
            b as u32,
            prev.sizes[pb],
            prev.errors[pb],
            prev.max_errors[pb],
        );
    }
    stats.deduped = if pruning.deduplication {
        candidates.len()
    } else {
        stats.merged_valid
    };
    // Hand the deduplicated column lists back to their candidates.
    if pruning.deduplication {
        for (cols, ix) in dedup {
            candidates[ix].cols = cols;
        }
    }
    // Step 5 — pruning (Eq. 9): size, score, and missing-parent handling.
    let mut out = Vec::with_capacity(candidates.len());
    for cand in candidates {
        if pruning.size_pruning && cand.ss_ub < sigma as f64 {
            stats.pruned_size += 1;
            continue;
        }
        // Missing-parent handling only makes sense on deduplicated
        // candidates (a single pair can contribute at most 2 parents).
        if pruning.parent_handling && pruning.deduplication && cand.parents.len() != level {
            stats.pruned_parents += 1;
            continue;
        }
        if pruning.score_pruning {
            let ub = ctx.score_upper_bound(cand.ss_ub, cand.se_ub, cand.sm_ub, sigma);
            if ub <= threshold {
                stats.pruned_score += 1;
                continue;
            }
        }
        out.push(cand.cols);
    }
    stats.survivors = out.len();
    record_enum_stats(exec, &stats);
    (out, stats)
}

/// Folds one level's enumeration counters into the execution context's
/// telemetry (no-op when stats are disabled).
fn record_enum_stats(exec: &ExecContext, stats: &EnumStats) {
    exec.record_level(|p| {
        p.candidates += stats.merged_valid as u64;
        p.deduped += (stats.merged_valid - stats.deduped) as u64;
        p.pruned_size += stats.pruned_size as u64;
        p.pruned_score += stats.pruned_score as u64;
        p.pruned_parents += stats.pruned_parents as u64;
    });
}

/// Merges two sorted, duplicate-free column lists into `out` (cleared
/// first), keeping the union sorted and duplicate-free.
fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// `true` if no two columns of the sorted list belong to the same original
/// feature. Relies on `col_feature` being non-decreasing over column ids.
fn feature_valid(cols: &[u32], col_feature: &[u32]) -> bool {
    cols.windows(2)
        .all(|w| col_feature[w[0] as usize] != col_feature[w[1] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruningConfig;

    /// Three features, each with 2 valid columns:
    /// cols 0,1 -> f0; cols 2,3 -> f1; cols 4,5 -> f2.
    const COL_FEATURE: [u32; 6] = [0, 0, 1, 1, 2, 2];

    fn level1(sizes: Vec<f64>, errors: Vec<f64>) -> LevelState {
        let n = sizes.len();
        LevelState {
            slices: (0..n as u32).map(|c| vec![c]).collect(),
            max_errors: errors.iter().map(|&e| e / 2.0).collect(),
            sizes,
            errors,
            scores: vec![1.0; n],
        }
    }

    fn ctx() -> ScoringContext {
        ScoringContext {
            n: 100.0,
            total_error: 50.0,
            avg_error: 0.5,
            alpha: 0.95,
        }
    }

    #[test]
    fn merge_sorted_unions() {
        let mut out = Vec::new();
        merge_sorted(&[0, 2], &[0, 4], &mut out);
        assert_eq!(out, vec![0, 2, 4]);
        merge_sorted(&[1], &[3], &mut out);
        assert_eq!(out, vec![1, 3]);
        merge_sorted(&[], &[5], &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn feature_validity() {
        assert!(feature_valid(&[0, 2, 4], &COL_FEATURE));
        assert!(!feature_valid(&[0, 1], &COL_FEATURE));
        assert!(!feature_valid(&[0, 2, 3], &COL_FEATURE));
        assert!(feature_valid(&[5], &COL_FEATURE));
    }

    #[test]
    fn level2_pairs_all_cross_feature() {
        let prev = level1(vec![50.0; 6], vec![25.0; 6]);
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        // C(6,2)=15 pairs, minus 3 same-feature pairs = 12 valid.
        assert_eq!(stats.pairs, 15);
        assert_eq!(stats.merged_valid, 12);
        assert_eq!(stats.deduped, 12);
        assert_eq!(cands.len(), 12);
        assert!(cands.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn parent_filter_removes_small_or_zero_error() {
        let prev = level1(
            vec![50.0, 2.0, 50.0, 50.0, 50.0, 50.0],
            vec![25.0, 25.0, 0.0, 25.0, 25.0, 25.0],
        );
        let tk = TopK::new(4, 1);
        let (_, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        // Parent 1 fails sigma, parent 2 fails zero error.
        assert_eq!(stats.parents, 4);
    }

    #[test]
    fn size_pruning_uses_min_parent_size() {
        // Parent sizes 5 and 100: candidate bound is 5 < sigma 10.
        let prev = LevelState {
            slices: vec![vec![0], vec![2]],
            sizes: vec![100.0, 100.0],
            errors: vec![50.0, 50.0],
            max_errors: vec![1.0, 1.0],
            scores: vec![1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        // Make one parent small via sizes.
        let mut small = prev.clone();
        small.sizes[1] = 5.0;
        let (cands, stats) = get_pair_candidates(
            &small,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        // Parent 1 itself fails the sigma filter, so no pairs at all.
        assert_eq!(stats.parents, 1);
        assert!(cands.is_empty());
    }

    #[test]
    fn level3_dedup_counts_parents() {
        // Level-2 slices over features f0,f1,f2: {0,2},{0,4},{2,4} all
        // share pairwise 1 column -> 3 pairs, all merging to {0,2,4}.
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4], vec![2, 4]],
            sizes: vec![50.0, 40.0, 30.0],
            errors: vec![25.0, 20.0, 15.0],
            max_errors: vec![1.0, 0.8, 0.6],
            scores: vec![1.0, 1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        assert_eq!(stats.pairs, 3);
        assert_eq!(stats.merged_valid, 3);
        assert_eq!(stats.deduped, 1);
        assert_eq!(cands, vec![vec![0, 2, 4]]);
    }

    #[test]
    fn missing_parent_prunes_candidate() {
        // Only 2 of the 3 parents of {0,2,4} exist: np = 2 < L = 3.
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4]],
            sizes: vec![50.0, 40.0],
            errors: vec![25.0, 20.0],
            max_errors: vec![1.0, 0.8],
            scores: vec![1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pruned_parents, 1);
        // Without parent handling the candidate survives.
        let (cands2, _) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::no_parent_handling(),
            &tk,
            &ExecContext::serial(),
        );
        assert_eq!(cands2, vec![vec![0, 2, 4]]);
    }

    #[test]
    fn score_pruning_against_topk_threshold() {
        let prev = level1(vec![20.0; 6], vec![1.0; 6]);
        // Fill the top-K with very high scores so every candidate's upper
        // bound falls below the threshold.
        let mut tk = TopK::new(1, 1);
        tk.update(&LevelState {
            slices: vec![vec![9]],
            sizes: vec![50.0],
            errors: vec![50.0],
            max_errors: vec![1.0],
            scores: vec![1000.0],
        });
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pruned_score, stats.deduped);
        // With score pruning off they survive.
        let (cands2, _) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            1,
            &PruningConfig::no_score_pruning(),
            &tk,
            &ExecContext::serial(),
        );
        assert_eq!(cands2.len(), 12);
    }

    #[test]
    fn parent_prefilter_drops_hopeless_parents() {
        // Parent 1 has tiny errors: its own bound cannot beat a full
        // top-K, so it is dropped before the join.
        let prev = LevelState {
            slices: vec![vec![0], vec![2], vec![4]],
            sizes: vec![50.0, 50.0, 50.0],
            errors: vec![25.0, 0.001, 25.0],
            max_errors: vec![1.0, 0.0001, 1.0],
            scores: vec![1.0, -0.9, 1.0],
        };
        let mut tk = TopK::new(1, 1);
        tk.update(&LevelState {
            slices: vec![vec![9]],
            sizes: vec![50.0],
            errors: vec![40.0],
            max_errors: vec![1.0],
            scores: vec![0.6],
        });
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            10,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        // Parents 0 and 2 have bound ≈ 0.8 > threshold 0.6 and join;
        // parent 1's bound is negative and it is dropped up front.
        assert_eq!(stats.parents, 2);
        assert_eq!(stats.pairs, 1);
        assert_eq!(cands, vec![vec![0, 4]]);
        // With score pruning disabled the weak parent participates again.
        let (_, stats2) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            10,
            &ctx(),
            10,
            &PruningConfig::no_score_pruning(),
            &tk,
            &ExecContext::serial(),
        );
        assert_eq!(stats2.parents, 3);
        assert_eq!(stats2.pairs, 3);
    }

    #[test]
    fn no_dedup_keeps_duplicates() {
        let prev = LevelState {
            slices: vec![vec![0, 2], vec![0, 4], vec![2, 4]],
            sizes: vec![50.0, 40.0, 30.0],
            errors: vec![25.0, 20.0, 15.0],
            max_errors: vec![1.0, 0.8, 0.6],
            scores: vec![1.0, 1.0, 1.0],
        };
        let tk = TopK::new(4, 1);
        let (cands, _) = get_pair_candidates(
            &prev,
            3,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::none(),
            &tk,
            &ExecContext::serial(),
        );
        assert_eq!(cands.len(), 3);
        assert!(cands.iter().all(|c| c == &vec![0, 2, 4]));
    }

    #[test]
    fn fewer_than_two_parents_short_circuits() {
        let prev = level1(vec![50.0], vec![25.0]);
        let tk = TopK::new(4, 1);
        let (cands, stats) = get_pair_candidates(
            &prev,
            2,
            &COL_FEATURE,
            6,
            &ctx(),
            1,
            &PruningConfig::all(),
            &tk,
            &ExecContext::serial(),
        );
        assert!(cands.is_empty());
        assert_eq!(stats.pairs, 0);
    }
}
