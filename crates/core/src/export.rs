//! Result serialization: JSON and CSV renderings of [`SliceLineResult`].
//!
//! Hand-rolled writers (the reproduction's dependency policy keeps serde
//! out); escaping covers everything the result types can contain — ASCII
//! identifiers, numbers, and the strings produced by
//! [`crate::algorithm::SliceInfo::describe`].
//!
//! ## Duration schema
//!
//! Every exported duration is a float in **seconds** and its key ends in
//! `_secs`, converted in exactly one place ([`sliceline_linalg::secs`]).
//! Earlier revisions mixed `_ms` keys into the run JSON; the schema is now
//! uniform across `result_to_json`, `ExecStats::to_json`, the trace
//! exporter, and the run manifest (see DESIGN.md §Observability).

use crate::algorithm::{SliceInfo, SliceLineResult};
use crate::stats::AnytimeStats;
use sliceline_linalg::secs;

/// Renders the top-K slices as a JSON array of objects.
pub fn top_k_to_json(result: &SliceLineResult) -> String {
    let mut out = String::from("[");
    for (i, s) in result.top_k.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&slice_to_json(s));
    }
    out.push(']');
    out
}

/// Renders one slice as a JSON object.
pub fn slice_to_json(s: &SliceInfo) -> String {
    let predicates = s
        .predicates
        .iter()
        .map(|&(j, code)| format!("{{\"feature\":{j},\"code\":{code}}}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"predicates\":[{predicates}],\"score\":{},\"size\":{},\"error\":{},\"max_error\":{},\"avg_error\":{}}}",
        json_num(s.score),
        json_num(s.size),
        json_num(s.error),
        json_num(s.max_error),
        json_num(s.avg_error),
    )
}

/// Renders the full run (top-K + per-level statistics) as a JSON object.
pub fn result_to_json(result: &SliceLineResult) -> String {
    let levels = result
        .stats
        .levels
        .iter()
        .map(|l| {
            format!(
                "{{\"level\":{},\"candidates\":{},\"valid\":{},\"elapsed_secs\":{}}}",
                l.level,
                l.candidates,
                l.valid,
                json_num(secs(l.elapsed))
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let exec = match &result.stats.exec {
        Some(e) => e.to_json(),
        None => "null".to_string(),
    };
    let anytime = match &result.stats.anytime {
        Some(a) => anytime_to_json(a),
        None => "null".to_string(),
    };
    format!(
        "{{\"n\":{},\"m\":{},\"l\":{},\"sigma\":{},\"total_elapsed_secs\":{},\"top_k\":{},\"levels\":[{levels}],\"exec\":{exec},\"anytime\":{anytime}}}",
        result.stats.n,
        result.stats.m,
        result.stats.l,
        result.stats.sigma,
        json_num(secs(result.stats.total_elapsed)),
        top_k_to_json(result),
    )
}

/// Renders the anytime-engine telemetry (budget outcome + certified
/// optimality gap) as a JSON object. Shared by [`result_to_json`], the
/// run manifest, and the serve job API so every surface reports the same
/// gap.
pub fn anytime_to_json(a: &AnytimeStats) -> String {
    format!(
        "{{\"exact\":{},\"gap\":{},\"evaluated\":{},\"expanded\":{},\"batches\":{},\
         \"frontier_peak\":{},\"frontier_final\":{},\"deadline_hit\":{},\"dropped\":{}}}",
        a.exact,
        json_num(a.gap),
        a.evaluated,
        a.expanded,
        a.batches,
        a.frontier_peak,
        a.frontier_final,
        a.deadline_hit,
        a.dropped,
    )
}

/// Renders the top-K as CSV with a header row. Predicates are encoded as
/// `feature=code` pairs joined by `&` (no quoting needed — the alphabet is
/// `[0-9=&]`).
pub fn top_k_to_csv(result: &SliceLineResult) -> String {
    let mut out = String::from("rank,predicates,score,size,error,max_error,avg_error\n");
    for (rank, s) in result.top_k.iter().enumerate() {
        let predicates = s
            .predicates
            .iter()
            .map(|&(j, code)| format!("{j}={code}"))
            .collect::<Vec<_>>()
            .join("&");
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            rank + 1,
            predicates,
            s.score,
            s.size,
            s.error,
            s.max_error,
            s.avg_error
        ));
    }
    out
}

/// JSON-safe number rendering: NaN and infinities become null (JSON has no
/// representation for them).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{LevelStats, RunStats};

    fn sample() -> SliceLineResult {
        SliceLineResult {
            top_k: vec![
                SliceInfo {
                    predicates: vec![(0, 1), (2, 3)],
                    score: 1.5,
                    size: 42.0,
                    error: 21.0,
                    max_error: 1.0,
                    avg_error: 0.5,
                },
                SliceInfo {
                    predicates: vec![(1, 2)],
                    score: 0.75,
                    size: 100.0,
                    error: 30.0,
                    max_error: 1.0,
                    avg_error: 0.3,
                },
            ],
            stats: RunStats {
                n: 1000,
                m: 5,
                l: 20,
                sigma: 10,
                levels: vec![LevelStats {
                    level: 1,
                    candidates: 20,
                    valid: 15,
                    ..Default::default()
                }],
                ..Default::default()
            },
        }
    }

    #[test]
    fn json_topk_structure() {
        let json = top_k_to_json(&sample());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"feature\":0"));
        assert!(json.contains("\"code\":3"));
        assert!(json.contains("\"score\":1.5"));
        assert_eq!(json.matches("{\"predicates\"").count(), 2);
    }

    #[test]
    fn json_result_includes_stats() {
        let json = result_to_json(&sample());
        assert!(json.contains("\"n\":1000"));
        assert!(json.contains("\"sigma\":10"));
        assert!(json.contains("\"levels\":[{\"level\":1"));
        assert!(json.contains("\"candidates\":20"));
        // No execution telemetry collected in the sample.
        assert!(json.contains("\"exec\":null"));
    }

    #[test]
    fn json_result_embeds_exec_stats() {
        let mut r = sample();
        let exec = sliceline_linalg::ExecContext::serial();
        exec.enable_stats(true);
        exec.begin_level(1);
        exec.record_level(|p| p.candidates += 3);
        r.stats.exec = Some(exec.exec_stats());
        let json = result_to_json(&r);
        assert!(json.contains("\"exec\":{"));
        assert!(json.contains("\"prepare_secs\""));
    }

    #[test]
    fn durations_export_as_float_seconds() {
        let mut r = sample();
        r.stats.total_elapsed = std::time::Duration::from_millis(1500);
        r.stats.levels[0].elapsed = std::time::Duration::from_millis(250);
        let json = result_to_json(&r);
        assert!(json.contains("\"total_elapsed_secs\":1.5"));
        assert!(json.contains("\"elapsed_secs\":0.25"));
        // The `_ms` keys are gone from the schema entirely.
        assert!(!json.contains("_ms\""));
    }

    #[test]
    fn json_result_includes_anytime_block() {
        // Level-wise runs export an explicit null.
        let json = result_to_json(&sample());
        assert!(json.contains("\"anytime\":null"));
        // Priority runs export the full budget outcome + gap.
        let mut r = sample();
        r.stats.anytime = Some(crate::stats::AnytimeStats {
            exact: false,
            gap: 0.125,
            evaluated: 320,
            expanded: 40,
            batches: 5,
            frontier_peak: 64,
            frontier_final: 12,
            deadline_hit: true,
            dropped: 2,
        });
        let json = result_to_json(&r);
        assert!(json.contains(
            "\"anytime\":{\"exact\":false,\"gap\":0.125,\"evaluated\":320,\"expanded\":40,\
             \"batches\":5,\"frontier_peak\":64,\"frontier_final\":12,\"deadline_hit\":true,\
             \"dropped\":2}"
        ));
        // A NaN gap can never leak invalid JSON.
        r.stats.anytime.as_mut().unwrap().gap = f64::NAN;
        assert!(result_to_json(&r).contains("\"gap\":null"));
    }

    #[test]
    fn json_handles_nonfinite() {
        let mut r = sample();
        r.top_k[0].score = f64::INFINITY;
        let json = top_k_to_json(&r);
        assert!(json.contains("\"score\":null"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn csv_rows_and_header() {
        let csv = top_k_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("rank,predicates"));
        assert!(lines[1].starts_with("1,0=1&2=3,1.5,42"));
        assert!(lines[2].starts_with("2,1=2,0.75,100"));
    }

    #[test]
    fn empty_result() {
        let r = SliceLineResult {
            top_k: vec![],
            stats: RunStats::default(),
        };
        assert_eq!(top_k_to_json(&r), "[]");
        assert_eq!(top_k_to_csv(&r).lines().count(), 1);
    }
}
