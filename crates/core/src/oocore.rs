//! Out-of-core slice finding: chunked, bounded-memory execution.
//!
//! The paper's scaling experiment (§5.4) runs SliceLine on ~192M Criteo
//! rows — far beyond what a single process can hold as a materialized
//! one-hot matrix. This module streams the dataset through the existing
//! level-wise lattice runner in fixed-size row chunks:
//!
//! 1. **Pass A (streamed preparation).** One pass over the
//!    [`RowBlockSource`] accumulates the dataset-level scoring quantities
//!    (`n`, `Σe`) and the full-width basic-slice statistics `ss₀`, `se₀`,
//!    `sm₀` (Eq. 4) directly from the integer codes — the one-hot matrix
//!    is never built. Memory is `O(l)` for the statistics (three `f64`
//!    per one-hot column), not `O(n·m)` for the data.
//! 2. **Kept-column projection.** Columns failing `ss₀ ≥ σ ∧ se₀ > 0`
//!    are dropped exactly as in [`create_and_score_basic_slices`]; a
//!    [`ChunkProjector`] one-hot encodes each subsequent chunk straight
//!    into the projected space.
//! 3. **Chunked evaluation.** Levels ≥ 2 run through the shared
//!    [`run_lattice`] loop. The evaluate hook streams row chunks through
//!    the existing fused or bitmap kernels and merges per-chunk
//!    `(ss, se, sm)` partials with [`merge_stat_partials`] — the same
//!    exchange seam the multi-threaded fused kernel and the simulated
//!    cluster aggregate use, so results are bit-for-bit identical to the
//!    in-memory path on exact partial sums (see `oocore_parity.rs`).
//! 4. **Spill-aware chunk cache.** Level 2 tees projected chunks into a
//!    [`SpillStore`]: chunks stay resident while they fit the
//!    [`MemoryBudget`]'s spill share and overflow to a temp file after
//!    that (ascending row order preserved), so levels ≥ 3 replay the
//!    cache instead of re-encoding the source.
//!
//! Enumeration, top-K maintenance, pruning, and telemetry are all the
//! shared `run_lattice` machinery — only evaluation is chunk-streamed.
//! Adaptive compaction is forced [`CompactKernel::Off`] on this path (the
//! working set is never resident to gather); compaction parity Off ≡ On
//! is separately property-tested, so overall parity is unaffected.
//!
//! [`create_and_score_basic_slices`]: crate::init::create_and_score_basic_slices
//! [`MemoryBudget`]: sliceline_linalg::MemoryBudget

use crate::algorithm::{run_lattice, LatticeRun, LatticeSeed, SliceLineResult};
use crate::config::{CompactKernel, EvalKernel, SliceLineConfig};
use crate::error::{Result, SliceLineError};
use crate::evaluate::{
    evaluate_slice_stats, evaluate_slice_stats_bitmap, merge_stat_partials, EvalEngine,
};
use crate::init::{LevelState, ProjectedData};
use crate::scoring::ScoringContext;
use crate::stats::RunStats;
use sliceline_frame::{ChunkProjector, RowBlockSource};
use sliceline_linalg::{sample_rss, BitMatrix, CsrMatrix, ExecContext, MemoryBudget};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Gauge: chunks streamed per evaluation pass.
pub const OOCORE_CHUNKS_GAUGE: &str = "core.oocore.chunks";
/// Gauge: resolved rows per chunk.
pub const OOCORE_CHUNK_ROWS_GAUGE: &str = "core.oocore.chunk_rows";
/// Gauge: projected chunks held resident in the spill store.
pub const OOCORE_RESIDENT_BYTES_GAUGE: &str = "core.oocore.resident_bytes";
/// Gauge: chunks overflowed to the spill file.
pub const OOCORE_SPILLED_CHUNKS_GAUGE: &str = "core.oocore.spilled_chunks";
/// Gauge: bytes written to the spill file.
pub const OOCORE_SPILLED_BYTES_GAUGE: &str = "core.oocore.spilled_bytes";

/// Default chunk size when neither `--chunk-rows` nor a memory budget is
/// set: large enough to amortize per-chunk kernel setup, small enough
/// that a projected chunk stays cache-friendly.
pub const DEFAULT_CHUNK_ROWS: usize = 1 << 18;

/// Resolves the rows-per-chunk: an explicit `chunk_rows` wins; otherwise
/// a limited budget is divided so one projected chunk (raw codes +
/// projected CSR + errors) uses about 1/8 of it; otherwise the default.
fn resolve_chunk_rows(config: &SliceLineConfig, m: usize, budget: MemoryBudget) -> usize {
    if config.chunk_rows > 0 {
        return config.chunk_rows;
    }
    if budget.is_limited() {
        // Per-row footprint while a chunk is in flight: m u32 codes, up
        // to m projected CSR entries (u32 col + f64 value), one row_ptr
        // word and one error value.
        let per_row = 16 * m + 24;
        return ((budget.bytes() / 8) / per_row).max(1);
    }
    DEFAULT_CHUNK_ROWS
}

/// Approximate heap bytes of one projected chunk plus its error slice —
/// the unit of spill-store budget accounting.
fn chunk_bytes(chunk: &CsrMatrix, errors: &[f64]) -> usize {
    chunk.nnz() * 12 + (chunk.rows() + 1) * 8 + errors.len() * 8
}

/// Disambiguates spill files when several streamed runs share a process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Bounded-memory cache of projected row chunks in ascending row order:
/// a resident prefix that fits the configured byte cap and a temp-file
/// suffix everything after the first overflow is appended to. The file
/// is removed on drop.
struct SpillStore {
    resident: Vec<(CsrMatrix, Vec<f64>)>,
    resident_bytes: usize,
    cap_bytes: usize,
    path: Option<PathBuf>,
    file: Option<File>,
    spilled_chunks: usize,
    spilled_bytes: u64,
}

impl SpillStore {
    fn new(cap_bytes: usize) -> Self {
        SpillStore {
            resident: Vec::new(),
            resident_bytes: 0,
            cap_bytes,
            path: None,
            file: None,
            spilled_chunks: 0,
            spilled_bytes: 0,
        }
    }

    /// Appends the next chunk. Once one chunk spills, all later chunks
    /// spill too, so replay order is always resident prefix then file
    /// suffix — the original ascending row order.
    fn push(&mut self, chunk: CsrMatrix, errors: Vec<f64>) -> io::Result<()> {
        let bytes = chunk_bytes(&chunk, &errors);
        if self.file.is_none() && self.resident_bytes + bytes <= self.cap_bytes {
            self.resident_bytes += bytes;
            self.resident.push((chunk, errors));
            return Ok(());
        }
        if self.file.is_none() {
            let path = std::env::temp_dir().join(format!(
                "sliceline-spill-{}-{}.bin",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let file = File::options()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)?;
            self.path = Some(path);
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("spill file just opened");
        let mut w = BufWriter::new(&mut *file);
        chunk.write_binary(&mut w)?;
        for &e in &errors {
            w.write_all(&e.to_bits().to_le_bytes())?;
        }
        w.flush()?;
        drop(w);
        self.spilled_chunks += 1;
        self.spilled_bytes += bytes as u64;
        Ok(())
    }

    /// Replays all chunks in insertion (row) order.
    fn replay(&mut self, mut f: impl FnMut(&CsrMatrix, &[f64])) -> io::Result<()> {
        for (chunk, errors) in &self.resident {
            f(chunk, errors);
        }
        if let Some(file) = self.file.as_mut() {
            file.seek(SeekFrom::Start(0))?;
            let mut r = BufReader::new(&mut *file);
            while let Some(chunk) = CsrMatrix::read_binary(&mut r)? {
                let rows = chunk.rows();
                let mut errors = Vec::with_capacity(rows);
                let mut buf = [0u8; 8];
                for _ in 0..rows {
                    r.read_exact(&mut buf)?;
                    errors.push(f64::from_bits(u64::from_le_bytes(buf)));
                }
                f(&chunk, &errors);
            }
            // Leave the cursor at EOF; the next replay seeks back.
            file.seek(SeekFrom::End(0))?;
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        self.file = None;
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Evaluates one projected chunk with the streaming variant of the
/// configured kernel. `Bitmap` packs the chunk and uses word-wise
/// `AND`/popcount; everything else (`Blocked`/`Fused`/`Auto`) runs the
/// fused sparse kernel, which needs no per-level state.
fn eval_chunk(
    chunk: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    use_bitmap: bool,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    if use_bitmap {
        let bits = BitMatrix::from_csr(chunk);
        evaluate_slice_stats_bitmap(&bits, errors, slices, exec)
    } else {
        evaluate_slice_stats(chunk, errors, slices, level, exec)
    }
}

/// Folds one chunk's partial into the running accumulator via the shared
/// [`merge_stat_partials`] seam (left fold in chunk order — the same
/// association the in-memory kernels use for their row-range partials).
fn fold_partial(
    acc: &mut Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    partial: (Vec<f64>, Vec<f64>, Vec<f64>),
    exec: &ExecContext,
) {
    *acc = Some(match acc.take() {
        None => partial,
        Some(prev) => {
            merge_stat_partials([prev, partial], exec).expect("two partials always merge")
        }
    });
}

/// Runs the full enumeration over a streamed [`RowBlockSource`] with a
/// fresh [`ExecContext`] built from the configuration (including its
/// memory budget). See [`find_slices_streamed_in`].
pub fn find_slices_streamed<S: RowBlockSource + ?Sized>(
    source: &mut S,
    config: &SliceLineConfig,
) -> Result<SliceLineResult> {
    let exec = config.exec_context();
    find_slices_streamed_in(source, config, &exec)
}

/// Runs the full enumeration (Algorithm 1) over a streamed
/// [`RowBlockSource`] on a caller-provided execution context, never
/// materializing the full one-hot matrix.
///
/// The memory budget comes from the configuration when set
/// (`mem_budget_bytes > 0`, i.e. `--mem-budget-mb`), else from the
/// context. Results are bit-for-bit identical to
/// [`SliceLine::find_slices`](crate::SliceLine::find_slices) on the
/// materialized equivalent whenever partial error sums are exact (the
/// workspace-wide parity contract; errors on a dyadic grid, e.g. 0/1
/// losses, always qualify).
pub fn find_slices_streamed_in<S: RowBlockSource + ?Sized>(
    source: &mut S,
    config: &SliceLineConfig,
    exec: &ExecContext,
) -> Result<SliceLineResult> {
    config.validate()?;
    let scope = exec.with_simd(config.simd).run_scoped();
    let exec = &scope;
    let start = Instant::now();
    let mut run_span = exec.tracer().span("find_slices_streamed", "core");

    // The placeholder projection below has no rows to gather, so adaptive
    // compaction must stay off on this path. Parity Off ≡ On is
    // property-tested separately, so this does not affect results.
    let mut local = config.clone();
    local.compact = CompactKernel::Off;
    let budget = if config.mem_budget_bytes > 0 {
        MemoryBudget::from_bytes(config.mem_budget_bytes)
    } else {
        exec.budget()
    };

    let domains = source.domains().to_vec();
    let m = domains.len();
    if m == 0 {
        return Err(SliceLineError::InvalidInput {
            reason: "empty input: source has 0 features".to_string(),
        });
    }
    // fb offsets: one-hot column ranges per feature (Algorithm 1 line 2).
    let mut fb = Vec::with_capacity(m);
    let mut l = 0usize;
    for &d in &domains {
        fb.push(l);
        l += d as usize;
    }
    let chunk_rows = resolve_chunk_rows(&local, m, budget);
    exec.metrics()
        .gauge(OOCORE_CHUNK_ROWS_GAUGE)
        .set(chunk_rows as f64);

    // Pass A: streamed preparation. Full-width Eq. 4 statistics and the
    // scoring aggregates in one pass, accumulated in row order so every
    // per-column sum performs the identical sequence of additions the
    // in-memory colSums / eᵀX path performs.
    let mut ss0 = vec![0.0f64; l];
    let mut se0 = vec![0.0f64; l];
    let mut sm0 = vec![0.0f64; l];
    let mut n = 0usize;
    let mut total_error = 0.0f64;
    {
        let _prep_span = exec.tracer().span("prepare_streamed", "core");
        source.reset();
        while let Some(block) = source.next_block(chunk_rows) {
            for r in 0..block.rows() {
                let e = block.errors[r];
                if !e.is_finite() || e < 0.0 {
                    return Err(SliceLineError::InvalidInput {
                        reason: format!(
                            "error at row {} is {e}; errors must be finite and >= 0",
                            n + r
                        ),
                    });
                }
                total_error += e;
                for (j, &code) in block.x0.row(r).iter().enumerate() {
                    let c = fb[j] + (code as usize - 1);
                    ss0[c] += 1.0;
                    se0[c] += e;
                    if e > sm0[c] {
                        sm0[c] = e;
                    }
                }
            }
            n += block.rows();
            sample_rss(exec.metrics());
        }
    }
    if n == 0 {
        return Err(SliceLineError::InvalidInput {
            reason: format!("empty input: 0x{m}"),
        });
    }
    let sigma = local.min_support.resolve(n).max(1);
    let ctx = ScoringContext {
        n: n as f64,
        total_error,
        avg_error: total_error / n as f64,
        alpha: local.alpha,
    };
    exec.add_prepare(start.elapsed());

    // Kept basic-slice columns (cI = ss0 >= sigma AND se0 > 0) with their
    // (feature, code) decode — built without a full-width remap table.
    let mut kept_cols: Vec<usize> = Vec::new();
    let mut col_feature: Vec<u32> = Vec::new();
    let mut col_code: Vec<u32> = Vec::new();
    let mut c = 0usize;
    for (j, &d) in domains.iter().enumerate() {
        for code in 1..=d {
            if ss0[c] >= sigma as f64 && se0[c] > 0.0 {
                kept_cols.push(c);
                col_feature.push(j as u32);
                col_code.push(code);
            }
            c += 1;
        }
    }
    let kept_len = kept_cols.len();
    let projector = ChunkProjector::new(m, &col_feature, &col_code);
    run_span.add_arg("n", n);
    run_span.add_arg("m", m);
    run_span.add_arg("l", l);
    run_span.add_arg("chunk_rows", chunk_rows);

    // Spill store: levels >= 3 replay the projected chunks instead of
    // re-encoding the source, so the source runs at most twice (pass A +
    // the level-2 tee). Half the budget is reserved for resident chunks;
    // the rest is evaluation working memory.
    let effective_max = local.max_level.min(m);
    let tee = effective_max >= 3 && kept_len > 0;
    let spill_cap = if budget.is_limited() {
        budget.bytes() / 2
    } else {
        usize::MAX
    };
    let mut spill = SpillStore::new(spill_cap);
    let mut spill_failed: Option<String> = None;
    let use_bitmap = matches!(local.eval, EvalKernel::Bitmap);
    let kernel_name = if use_bitmap {
        "oocore:bitmap"
    } else {
        "oocore:fused"
    };

    let run = LatticeRun {
        config: &local,
        ctx,
        sigma,
        engine: EvalEngine::new(local.bitmap_cache_bytes),
        stats: RunStats {
            sigma,
            n,
            m,
            l,
            ..Default::default()
        },
        start,
    };
    let source = &mut *source;
    let result = run_lattice(
        run,
        exec,
        // Seeding: level-1 state straight from the streamed Eq. 4
        // statistics, value-for-value what create_and_score_basic_slices
        // produces. The projection carries a 0-row placeholder matrix —
        // enumeration only consults its width and the column decode;
        // evaluation streams chunks instead of reading it.
        move |exec| {
            let mut level = LevelState {
                slices: Vec::with_capacity(kept_len),
                sizes: exec.take_f64(0),
                errors: exec.take_f64(0),
                max_errors: exec.take_f64(0),
                scores: exec.take_f64(0),
            };
            for (new_c, &kc) in kept_cols.iter().enumerate() {
                level.slices.push(vec![new_c as u32]);
                level.sizes.push(ss0[kc]);
                level.errors.push(se0[kc]);
                level.max_errors.push(sm0[kc]);
                level.scores.push(ctx.score(ss0[kc], se0[kc]));
            }
            LatticeSeed {
                proj: ProjectedData {
                    x: CsrMatrix::zeros(0, kept_len),
                    col_feature,
                    col_code,
                    orig_col: kept_cols,
                },
                level,
                errors: exec.take_f64(0),
            }
        },
        |_x, _errors, slices, level, ctx, _engine, exec| {
            let k = slices.len();
            if k == 0 || spill_failed.is_some() {
                return LevelState::default();
            }
            let mut acc: Option<(Vec<f64>, Vec<f64>, Vec<f64>)> = None;
            if level == 2 {
                // First streamed level: re-encode from the source,
                // teeing projected chunks into the spill store when
                // deeper levels will need them.
                source.reset();
                let mut chunks = 0usize;
                while let Some(block) = source.next_block(chunk_rows) {
                    let chunk = projector.project(&block.x0);
                    fold_partial(
                        &mut acc,
                        eval_chunk(&chunk, &block.errors, &slices, level, use_bitmap, exec),
                        exec,
                    );
                    sample_rss(exec.metrics());
                    if tee {
                        if let Err(e) = spill.push(chunk, block.errors) {
                            spill_failed = Some(format!("spill write failed: {e}"));
                            return LevelState::default();
                        }
                    }
                    chunks += 1;
                }
                let metrics = exec.metrics();
                metrics.gauge(OOCORE_CHUNKS_GAUGE).set(chunks as f64);
                metrics
                    .gauge(OOCORE_RESIDENT_BYTES_GAUGE)
                    .set(spill.resident_bytes as f64);
                metrics
                    .gauge(OOCORE_SPILLED_CHUNKS_GAUGE)
                    .set(spill.spilled_chunks as f64);
                metrics
                    .gauge(OOCORE_SPILLED_BYTES_GAUGE)
                    .set(spill.spilled_bytes as f64);
            } else {
                let replayed = spill.replay(|chunk, errors| {
                    fold_partial(
                        &mut acc,
                        eval_chunk(chunk, errors, &slices, level, use_bitmap, exec),
                        exec,
                    );
                    sample_rss(exec.metrics());
                });
                if let Err(e) = replayed {
                    spill_failed = Some(format!("spill replay failed: {e}"));
                    return LevelState::default();
                }
            }
            let (sizes, errs, max_errs) = match acc {
                Some(stats) => stats,
                None => return LevelState::default(),
            };
            exec.record_level(|p| {
                p.evaluated += k as u64;
                p.kernel = Some(kernel_name);
            });
            let mut scores = exec.take_f64(0);
            ctx.score_all_into(&sizes, &errs, &mut scores);
            LevelState {
                slices,
                sizes,
                errors: errs,
                max_errors: max_errs,
                scores,
            }
        },
    );
    if let Some(reason) = spill_failed {
        return Err(SliceLineError::Internal { reason });
    }
    sample_rss(exec.metrics());
    run_span.add_arg("levels", result.stats.levels.len());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SliceLine;
    use sliceline_frame::{IntMatrix, MemorySource};

    fn dataset() -> (IntMatrix, Vec<f64>) {
        // 16 rows, 3 features; planted hot slice f0=1 AND f1=2.
        let rows: Vec<Vec<u32>> = (0..16u32)
            .map(|i| vec![1 + i % 2, 1 + i % 3, 1 + i % 4])
            .collect();
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        let errors: Vec<f64> = (0..16)
            .map(|i| {
                if i % 2 == 0 && i % 3 == 1 {
                    1.0
                } else {
                    f64::from(i % 4) * 0.25
                }
            })
            .collect();
        (x0, errors)
    }

    fn config(chunk_rows: usize) -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.9)
            .max_level(3)
            .chunk_rows(chunk_rows)
            .build()
            .unwrap()
    }

    #[test]
    fn streamed_matches_in_memory_across_chunk_sizes() {
        let (x0, errors) = dataset();
        let expected = SliceLine::new(config(0)).find_slices(&x0, &errors).unwrap();
        for chunk_rows in [1usize, 3, 5, 16, 64] {
            let mut src = MemorySource::new(x0.clone(), errors.clone()).unwrap();
            let got = find_slices_streamed(&mut src, &config(chunk_rows)).unwrap();
            assert_eq!(got.top_k.len(), expected.top_k.len());
            for (g, e) in got.top_k.iter().zip(expected.top_k.iter()) {
                assert_eq!(g.predicates, e.predicates);
                assert_eq!(g.score.to_bits(), e.score.to_bits(), "chunk {chunk_rows}");
                assert_eq!(g.size.to_bits(), e.size.to_bits());
                assert_eq!(g.error.to_bits(), e.error.to_bits());
                assert_eq!(g.max_error.to_bits(), e.max_error.to_bits());
            }
            assert_eq!(got.stats.levels.len(), expected.stats.levels.len());
        }
    }

    #[test]
    fn bitmap_kernel_streams_identically() {
        let (x0, errors) = dataset();
        let expected = SliceLine::new(config(0)).find_slices(&x0, &errors).unwrap();
        let mut cfg = config(4);
        cfg.eval = EvalKernel::Bitmap;
        let mut src = MemorySource::new(x0, errors).unwrap();
        let got = find_slices_streamed(&mut src, &cfg).unwrap();
        for (g, e) in got.top_k.iter().zip(expected.top_k.iter()) {
            assert_eq!(g.predicates, e.predicates);
            assert_eq!(g.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn tiny_budget_forces_spill_and_keeps_results() {
        let (x0, errors) = dataset();
        let expected = SliceLine::new(config(0)).find_slices(&x0, &errors).unwrap();
        let mut cfg = config(2);
        // A 1-byte spill share admits no resident chunk: everything
        // spills to disk and levels >= 3 replay the file.
        cfg.mem_budget_bytes = 2;
        let mut src = MemorySource::new(x0, errors).unwrap();
        let got = find_slices_streamed(&mut src, &cfg).unwrap();
        for (g, e) in got.top_k.iter().zip(expected.top_k.iter()) {
            assert_eq!(g.predicates, e.predicates);
            assert_eq!(g.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn rejects_bad_errors_with_global_row_index() {
        let (x0, mut errors) = dataset();
        errors[11] = -0.5;
        let mut src = MemorySource::new(x0, errors).unwrap();
        let err = find_slices_streamed(&mut src, &config(4)).unwrap_err();
        assert!(
            matches!(err, SliceLineError::InvalidInput { ref reason } if reason.contains("row 11"))
        );
    }

    #[test]
    fn spill_store_round_trips_in_order() {
        let proj = ChunkProjector::new(1, &[0], &[1]);
        let mut store = SpillStore::new(0); // everything spills
        let mut expected = Vec::new();
        for i in 0..5u32 {
            let x0 = IntMatrix::new(2, 1, vec![1, 1], vec![1]).unwrap();
            let chunk = proj.project(&x0);
            let errors = vec![f64::from(i), f64::from(i) + 0.5];
            expected.push(errors.clone());
            store.push(chunk, errors).unwrap();
        }
        assert_eq!(store.spilled_chunks, 5);
        for _ in 0..2 {
            let mut seen = Vec::new();
            store
                .replay(|chunk, errors| {
                    assert_eq!(chunk.rows(), 2);
                    seen.push(errors.to_vec());
                })
                .unwrap();
            assert_eq!(seen, expected);
        }
        let path = store.path.clone().unwrap();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }
}
