//! Run statistics: the per-level enumeration counters and timings behind
//! the paper's Fig. 3, Fig. 4 and Table 2.

use crate::enumerate::EnumStats;
use sliceline_linalg::ExecStats;
use std::time::Duration;

/// Statistics for a single lattice level.
#[derive(Debug, Clone, Default)]
pub struct LevelStats {
    /// Lattice level `L` (1 = basic slices).
    pub level: usize,
    /// Candidate slices handed to evaluation at this level. For level 1
    /// this is the total number of one-hot columns `l` (matching the
    /// "Candidates" row of the paper's Table 2).
    pub candidates: usize,
    /// Evaluated slices satisfying `|S| ≥ σ ∧ se > 0` (the paper's "valid
    /// slices").
    pub valid: usize,
    /// Enumeration counters (join pairs, dedup, per-technique pruning).
    /// `None` for level 1, which has no pair enumeration.
    pub enumeration: Option<EnumStats>,
    /// Wall-clock time spent on this level (enumeration + evaluation +
    /// top-K maintenance).
    pub elapsed: Duration,
    /// Score-pruning threshold `max(sc_k, 0)` in effect *after* this
    /// level's top-K update.
    pub threshold_after: f64,
    /// Working-set rows after this level's adaptive-compaction stage
    /// (equal to the input row count when the stage did not gather).
    /// Non-increasing level-over-level.
    pub rows_retained: usize,
    /// Working-set one-hot columns after this level's compaction stage.
    /// Non-increasing level-over-level.
    pub cols_retained: usize,
}

/// Telemetry from the anytime best-first engine
/// ([`crate::priority::PrioritySliceLine`]): budget outcome and the
/// certified optimality gap. `None` on level-wise runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnytimeStats {
    /// `true` when the frontier was exhausted (or fully pruned) with no
    /// budget stop and no capped drops whose bound still mattered — the
    /// returned top-K is the exact answer and [`Self::gap`] is zero.
    pub exact: bool,
    /// Certified optimality gap `max(0, best_unexplored_bound −
    /// max(sc_k, 0))`: no slice outside the returned top-K can score more
    /// than `kth_score + gap`. Zero iff the result is exact.
    pub gap: f64,
    /// Slices evaluated (basic slices + frontier children).
    pub evaluated: usize,
    /// Frontier nodes popped and expanded.
    pub expanded: usize,
    /// Frontier rounds run (≤ `⌈expanded / B⌉`).
    pub batches: usize,
    /// Peak frontier size (heap nodes) over the run.
    pub frontier_peak: usize,
    /// Frontier size when the search stopped (0 on an exhaustive drain).
    pub frontier_final: usize,
    /// `true` when the wall-clock deadline fired the stop.
    pub deadline_hit: bool,
    /// Children dropped by the frontier-memory cap (bounds folded into
    /// [`Self::gap`]).
    pub dropped: usize,
}

/// Statistics for a complete SliceLine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-level statistics, index 0 = level 1.
    pub levels: Vec<LevelStats>,
    /// Total wall-clock time including data preparation.
    pub total_elapsed: Duration,
    /// Resolved minimum support `σ`.
    pub sigma: usize,
    /// Number of rows `n`.
    pub n: usize,
    /// Number of original features `m`.
    pub m: usize,
    /// One-hot width `l` before projection.
    pub l: usize,
    /// Valid basic slices (columns surviving `ss₀ ≥ σ ∧ se₀ > 0`).
    pub basic_slices: usize,
    /// Execution-layer telemetry (per-stage timings, kernel choices, pool
    /// counters). `None` unless stats were enabled on the [`ExecContext`]
    /// the run used.
    ///
    /// [`ExecContext`]: sliceline_linalg::ExecContext
    pub exec: Option<ExecStats>,
    /// Anytime-engine telemetry (budget outcome + certified gap). `None`
    /// on level-wise runs.
    pub anytime: Option<AnytimeStats>,
}

impl RunStats {
    /// Total slices evaluated across all levels.
    pub fn total_evaluated(&self) -> usize {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// The deepest level reached.
    pub fn max_level(&self) -> usize {
        self.levels.last().map(|l| l.level).unwrap_or(0)
    }

    /// Renders a compact per-level table (used by examples and benches).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "level  candidates  valid      parents  pairs    deduped  pruned(sz/sc/par)  rows_ret  cols_ret  join(s)   dedup(s)  elapsed\n",
        );
        for l in &self.levels {
            let (parents, pairs, deduped, psz, psc, ppar, join, dedup) = match &l.enumeration {
                Some(e) => (
                    e.parents,
                    e.pairs,
                    e.deduped,
                    e.pruned_size,
                    e.pruned_score,
                    e.pruned_parents,
                    e.join_time,
                    e.dedup_time,
                ),
                None => (0, 0, 0, 0, 0, 0, Duration::ZERO, Duration::ZERO),
            };
            out.push_str(&format!(
                "{:<6} {:<11} {:<10} {:<8} {:<8} {:<8} {:<18} {:<9} {:<9} {:<9.4} {:<9.4} {:.1?}\n",
                l.level,
                l.candidates,
                l.valid,
                parents,
                pairs,
                deduped,
                format!("{psz}/{psc}/{ppar}"),
                l.rows_retained,
                l.cols_retained,
                join.as_secs_f64(),
                dedup.as_secs_f64(),
                l.elapsed
            ));
        }
        if let Some(a) = &self.anytime {
            out.push_str(&format!(
                "anytime: exact={} gap={:.6} evaluated={} expanded={} batches={} \
                 frontier_peak={} frontier_final={} deadline_hit={} dropped={}\n",
                a.exact,
                a.gap,
                a.evaluated,
                a.expanded,
                a.batches,
                a.frontier_peak,
                a.frontier_final,
                a.deadline_hit,
                a.dropped,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = RunStats {
            levels: vec![
                LevelStats {
                    level: 1,
                    candidates: 10,
                    valid: 5,
                    ..Default::default()
                },
                LevelStats {
                    level: 2,
                    candidates: 7,
                    valid: 3,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_evaluated(), 17);
        assert_eq!(stats.max_level(), 2);
    }

    #[test]
    fn empty_run() {
        let stats = RunStats::default();
        assert_eq!(stats.total_evaluated(), 0);
        assert_eq!(stats.max_level(), 0);
    }

    #[test]
    fn anytime_line_renders_when_present() {
        let mut stats = RunStats::default();
        assert!(!stats.render_table().contains("anytime:"));
        stats.anytime = Some(AnytimeStats {
            exact: false,
            gap: 0.25,
            evaluated: 100,
            expanded: 12,
            batches: 3,
            frontier_peak: 40,
            frontier_final: 17,
            deadline_hit: true,
            dropped: 0,
        });
        let t = stats.render_table();
        assert!(t.contains("anytime: exact=false gap=0.250000"));
        assert!(t.contains("deadline_hit=true"));
    }

    #[test]
    fn table_renders_every_level() {
        let stats = RunStats {
            levels: vec![LevelStats {
                level: 1,
                candidates: 4,
                valid: 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        let t = stats.render_table();
        assert!(t.contains("level"));
        assert!(t.contains("join(s)"));
        assert!(t.contains("dedup(s)"));
        assert!(t.lines().count() >= 2);
    }
}
