//! Run statistics: the per-level enumeration counters and timings behind
//! the paper's Fig. 3, Fig. 4 and Table 2.

use crate::enumerate::EnumStats;
use sliceline_linalg::ExecStats;
use std::time::Duration;

/// Statistics for a single lattice level.
#[derive(Debug, Clone, Default)]
pub struct LevelStats {
    /// Lattice level `L` (1 = basic slices).
    pub level: usize,
    /// Candidate slices handed to evaluation at this level. For level 1
    /// this is the total number of one-hot columns `l` (matching the
    /// "Candidates" row of the paper's Table 2).
    pub candidates: usize,
    /// Evaluated slices satisfying `|S| ≥ σ ∧ se > 0` (the paper's "valid
    /// slices").
    pub valid: usize,
    /// Enumeration counters (join pairs, dedup, per-technique pruning).
    /// `None` for level 1, which has no pair enumeration.
    pub enumeration: Option<EnumStats>,
    /// Wall-clock time spent on this level (enumeration + evaluation +
    /// top-K maintenance).
    pub elapsed: Duration,
    /// Score-pruning threshold `max(sc_k, 0)` in effect *after* this
    /// level's top-K update.
    pub threshold_after: f64,
    /// Working-set rows after this level's adaptive-compaction stage
    /// (equal to the input row count when the stage did not gather).
    /// Non-increasing level-over-level.
    pub rows_retained: usize,
    /// Working-set one-hot columns after this level's compaction stage.
    /// Non-increasing level-over-level.
    pub cols_retained: usize,
}

/// Statistics for a complete SliceLine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-level statistics, index 0 = level 1.
    pub levels: Vec<LevelStats>,
    /// Total wall-clock time including data preparation.
    pub total_elapsed: Duration,
    /// Resolved minimum support `σ`.
    pub sigma: usize,
    /// Number of rows `n`.
    pub n: usize,
    /// Number of original features `m`.
    pub m: usize,
    /// One-hot width `l` before projection.
    pub l: usize,
    /// Valid basic slices (columns surviving `ss₀ ≥ σ ∧ se₀ > 0`).
    pub basic_slices: usize,
    /// Execution-layer telemetry (per-stage timings, kernel choices, pool
    /// counters). `None` unless stats were enabled on the [`ExecContext`]
    /// the run used.
    ///
    /// [`ExecContext`]: sliceline_linalg::ExecContext
    pub exec: Option<ExecStats>,
}

impl RunStats {
    /// Total slices evaluated across all levels.
    pub fn total_evaluated(&self) -> usize {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// The deepest level reached.
    pub fn max_level(&self) -> usize {
        self.levels.last().map(|l| l.level).unwrap_or(0)
    }

    /// Renders a compact per-level table (used by examples and benches).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "level  candidates  valid      parents  pairs    deduped  pruned(sz/sc/par)  rows_ret  cols_ret  join(s)   dedup(s)  elapsed\n",
        );
        for l in &self.levels {
            let (parents, pairs, deduped, psz, psc, ppar, join, dedup) = match &l.enumeration {
                Some(e) => (
                    e.parents,
                    e.pairs,
                    e.deduped,
                    e.pruned_size,
                    e.pruned_score,
                    e.pruned_parents,
                    e.join_time,
                    e.dedup_time,
                ),
                None => (0, 0, 0, 0, 0, 0, Duration::ZERO, Duration::ZERO),
            };
            out.push_str(&format!(
                "{:<6} {:<11} {:<10} {:<8} {:<8} {:<8} {:<18} {:<9} {:<9} {:<9.4} {:<9.4} {:.1?}\n",
                l.level,
                l.candidates,
                l.valid,
                parents,
                pairs,
                deduped,
                format!("{psz}/{psc}/{ppar}"),
                l.rows_retained,
                l.cols_retained,
                join.as_secs_f64(),
                dedup.as_secs_f64(),
                l.elapsed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = RunStats {
            levels: vec![
                LevelStats {
                    level: 1,
                    candidates: 10,
                    valid: 5,
                    ..Default::default()
                },
                LevelStats {
                    level: 2,
                    candidates: 7,
                    valid: 3,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_evaluated(), 17);
        assert_eq!(stats.max_level(), 2);
    }

    #[test]
    fn empty_run() {
        let stats = RunStats::default();
        assert_eq!(stats.total_evaluated(), 0);
        assert_eq!(stats.max_level(), 0);
    }

    #[test]
    fn table_renders_every_level() {
        let stats = RunStats {
            levels: vec![LevelStats {
                level: 1,
                candidates: 4,
                valid: 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        let t = stats.render_table();
        assert!(t.contains("level"));
        assert!(t.contains("join(s)"));
        assert!(t.contains("dedup(s)"));
        assert!(t.lines().count() >= 2);
    }
}
