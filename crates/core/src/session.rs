//! Two-phase session architecture: resident dataset state + per-request
//! queries.
//!
//! A one-shot [`SliceLine::find_slices`](crate::SliceLine::find_slices)
//! call spends a large fixed cost before the lattice loop even starts:
//! input validation, one-hot encoding, basic-slice statistics (Eq. 4),
//! and — for the bitmap kernel — packing the projected matrix into
//! `u64` column bitmaps. A served system answers many queries against
//! the same `(X, e)` pair, so this module splits the pipeline in two:
//!
//! * [`DatasetSession`] owns everything derivable from `(X, e)` alone —
//!   the encoded one-hot matrix, the column→predicate mapping, the
//!   error-independent column sums `ss₀`, the error-dependent `se₀`/`sm₀`
//!   statistics, a lazily-packed full [`BitMatrix`], and a pooled
//!   [`ExecContext`] whose scratch buffers are recycled across queries.
//! * [`SliceQuery`] carries the per-request parameters (k, α, σ,
//!   max_level, kernels, budgets). Running one against a session skips
//!   prepare/pack entirely: level 1 is rebuilt from the cached
//!   statistics and the bitmap engine is seeded by column-projecting the
//!   session's full pack.
//!
//! When the model is retrained, [`DatasetSession::swap_errors`] performs
//! *delta re-slicing*: the encoded matrix, `ss₀`, and the packed bitmaps
//! all survive (they depend on `X` only); only `se₀`/`sm₀` are
//! recomputed in one O(nnz) pass.
//!
//! Parity is by construction, not by luck: session queries and the
//! one-shot path execute the same [`run_lattice`] runner, and the seeded
//! bitmap pack is bit-identical to the pack the cold path builds
//! (`BitMatrix::select_cols` commutes with CSR column projection). The
//! property tests in `tests/session_parity.rs` pin this down across
//! kernels and thread counts.

use crate::algorithm::{run_lattice, LatticeRun, LatticeSeed, SliceLineResult};
use crate::config::{EvalKernel, SliceLineConfig};
use crate::error::{Result, SliceLineError};
use crate::evaluate::{evaluate_slices_with, EvalEngine};
use crate::init::{LevelState, ProjectedData};
use crate::priority::{run_frontier, FrontierRun, PriorityResult};
use crate::scoring::ScoringContext;
use crate::stats::RunStats;
use sliceline_frame::onehot::one_hot_encode;
use sliceline_frame::IntMatrix;
use sliceline_linalg::{agg, BitMatrix, CsrMatrix, ExecContext};
use std::time::Instant;

/// A per-request slice-finding query: all the knobs of a
/// [`SliceLineConfig`] (k, α, minimum support, max level, kernel
/// selection, cache budgets), decoupled from dataset preparation.
///
/// The `parallel` field selects the query's thread count: the session's
/// context is re-viewed with [`ExecContext::with_threads`] per query, so
/// one session can serve queries at different parallelism levels while
/// sharing a single scratch pool.
#[derive(Debug, Clone, Default)]
pub struct SliceQuery {
    config: SliceLineConfig,
}

impl SliceQuery {
    /// Wraps a configuration as a query.
    pub fn new(config: SliceLineConfig) -> Self {
        SliceQuery { config }
    }

    /// Borrows the underlying configuration.
    pub fn config(&self) -> &SliceLineConfig {
        &self.config
    }
}

impl From<SliceLineConfig> for SliceQuery {
    fn from(config: SliceLineConfig) -> Self {
        SliceQuery::new(config)
    }
}

/// Resident, query-independent state for one `(X, errors)` pair.
///
/// Owns the one-hot encoding, the cached basic-slice statistics, the
/// (lazily built) full bitmap pack, and a pooled execution context.
/// Repeat queries via [`DatasetSession::query`] skip preparation and
/// packing; [`DatasetSession::swap_errors`] keeps everything derived
/// from `X` and refreshes only the error-dependent statistics.
///
/// ```
/// use sliceline::session::{DatasetSession, SliceQuery};
/// use sliceline::SliceLineConfig;
/// use sliceline_frame::IntMatrix;
/// use sliceline_linalg::ExecContext;
///
/// let x0 = IntMatrix::from_rows(&[
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
/// ]).unwrap();
/// let errors = vec![1.0, 0.1, 0.1, 0.1, 1.0, 0.1, 0.1, 0.1];
/// let config = SliceLineConfig::builder().k(1).min_support(2).build().unwrap();
///
/// let mut session = DatasetSession::new(&x0, &errors, &ExecContext::serial()).unwrap();
/// let r1 = session.query(&SliceQuery::new(config.clone())).unwrap(); // cold
/// let r2 = session.query(&SliceQuery::new(config)).unwrap();         // warm
/// assert_eq!(r1.top_k, r2.top_k);
/// ```
pub struct DatasetSession {
    /// One-hot encoded feature matrix `X` (`n × l`).
    x: CsrMatrix,
    /// Number of original features `m`.
    m: usize,
    /// For each one-hot column: the owning original feature (0-based).
    col_feature: Vec<u32>,
    /// For each one-hot column: the 1-based value code within its feature.
    col_code: Vec<u32>,
    /// Current row-aligned error vector.
    errors: Vec<f64>,
    /// Error-independent column sums `ss₀ = colSums(X)ᵀ` (survive swaps).
    ss0: Vec<f64>,
    /// Error-dependent column errors `se₀ = (eᵀ X)ᵀ`.
    se0: Vec<f64>,
    /// Error-dependent per-column maximum tuple errors `sm₀`.
    sm0: Vec<f64>,
    /// Full-width bitmap pack of `X`, built on first bitmap-kernel query.
    bits: Option<BitMatrix>,
    /// Pooled execution context shared by every query on this session.
    exec: ExecContext,
    /// Bumped by every [`DatasetSession::swap_errors`].
    generation: u64,
}

impl std::fmt::Debug for DatasetSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetSession")
            .field("n", &self.n())
            .field("m", &self.m)
            .field("l", &self.l())
            .field("packed", &self.bits.is_some())
            .field("generation", &self.generation)
            .finish()
    }
}

impl DatasetSession {
    /// Validates `(x0, errors)` and builds the resident dataset state.
    ///
    /// The session clones `exec` (sharing its scratch pool, tracer, and
    /// metrics registry) and keeps it for the lifetime of the session;
    /// each query derives a per-run telemetry scope from it.
    pub fn new(x0: &IntMatrix, errors: &[f64], exec: &ExecContext) -> Result<Self> {
        validate_inputs(x0, errors)?;
        let exec = exec.clone();
        let _span = exec
            .tracer()
            .span("session.build", "core")
            .arg("rows", x0.rows())
            .arg("cols", x0.cols());
        let x = one_hot_encode(x0);
        let mut col_feature = Vec::with_capacity(x.cols());
        let mut col_code = Vec::with_capacity(x.cols());
        for (j, &d) in x0.domains().iter().enumerate() {
            for code in 1..=d {
                col_feature.push(j as u32);
                col_code.push(code);
            }
        }
        // Eq. 4, error-independent half. The parallel column sums add
        // integers (X is binary), so any thread count gives identical
        // results — cached values match what any query would compute.
        let ss0 = if exec.threads() > 1 {
            agg::col_sums_csr_parallel(&x, &exec)
        } else {
            agg::col_sums_csr(&x)
        };
        let mut session = DatasetSession {
            x,
            m: x0.cols(),
            col_feature,
            col_code,
            errors: errors.to_vec(),
            ss0,
            se0: Vec::new(),
            sm0: Vec::new(),
            bits: None,
            exec,
            generation: 0,
        };
        session.refresh_error_stats();
        session.exec.metrics().counter("core.session.builds").inc();
        Ok(session)
    }

    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of original features `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// One-hot width `l`.
    pub fn l(&self) -> usize {
        self.x.cols()
    }

    /// The current error vector.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Error-vector generation: 0 at build, +1 per
    /// [`DatasetSession::swap_errors`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The session's pooled execution context.
    pub fn exec(&self) -> &ExecContext {
        &self.exec
    }

    /// Replaces the error vector in place — *delta re-slicing* for a
    /// retrained model.
    ///
    /// Everything derived from `X` alone survives: the one-hot encoding,
    /// the column sums `ss₀`, and the packed bitmaps. Only the
    /// error-dependent statistics (`se₀`, `sm₀`) are recomputed, in one
    /// O(nnz) pass, and the generation counter is bumped. The next query
    /// is bit-for-bit identical to a fresh run on the new vector.
    pub fn swap_errors(&mut self, errors: &[f64]) -> Result<()> {
        if errors.len() != self.n() {
            return Err(SliceLineError::InvalidInput {
                reason: format!("X0 has {} rows but e has {}", self.n(), errors.len()),
            });
        }
        validate_errors(errors)?;
        let _span = self
            .exec
            .tracer()
            .span("session.swap_errors", "core")
            .arg("generation", self.generation + 1);
        self.errors.clear();
        self.errors.extend_from_slice(errors);
        self.refresh_error_stats();
        self.generation += 1;
        self.exec.metrics().counter("core.session.swaps").inc();
        Ok(())
    }

    /// Runs a query against the resident state with the standard
    /// evaluation kernels ([`evaluate_slices_with`] selected by the
    /// query's `eval` field).
    pub fn query(&mut self, query: &SliceQuery) -> Result<SliceLineResult> {
        let eval_kernel = query.config().eval;
        self.query_with(query, move |x, errors, slices, level, ctx, engine, exec| {
            evaluate_slices_with(x, errors, slices, level, ctx, eval_kernel, exec, engine)
        })
    }

    /// Runs a query with a caller-supplied level evaluator — the hook
    /// the distributed driver uses to run its strategy dispatch against
    /// a resident session. Seeding, caching, and statistics behave
    /// exactly as in [`DatasetSession::query`].
    pub fn query_with<E>(&mut self, query: &SliceQuery, evaluate: E) -> Result<SliceLineResult>
    where
        E: FnMut(
            &CsrMatrix,
            &[f64],
            Vec<Vec<u32>>,
            usize,
            &ScoringContext,
            &mut EvalEngine,
            &ExecContext,
        ) -> LevelState,
    {
        let config = query.config();
        config.validate()?;
        let scope = self
            .exec
            .with_threads(config.parallel.threads())
            .with_simd(config.simd)
            .run_scoped();
        let exec = &scope;
        let start = Instant::now();
        let mut run_span = exec.tracer().span("session.query", "core");
        let (n, l) = (self.n(), self.l());
        let sigma = config.min_support.resolve(n).max(1);
        let ctx = ScoringContext::new(&self.errors, config.alpha);
        // Warm engine start for kernels that can evaluate through
        // bitmaps: pack the full matrix once per session, then
        // column-project the pack to this query's surviving columns —
        // bit-identical to the pack a cold run would build from the
        // projected CSR, at memcpy cost.
        let engine = match config.eval {
            EvalKernel::Bitmap | EvalKernel::Auto { .. } => {
                let kept = self.kept_columns(sigma);
                let bits = self.packed(exec);
                EvalEngine::with_packed(config.bitmap_cache_bytes, bits.select_cols(&kept, exec))
            }
            _ => EvalEngine::new(config.bitmap_cache_bytes),
        };
        exec.add_prepare(start.elapsed());
        run_span.add_arg("n", n);
        run_span.add_arg("m", self.m);
        run_span.add_arg("l", l);
        run_span.add_arg("generation", self.generation);
        let run = LatticeRun {
            config,
            ctx,
            sigma,
            engine,
            stats: RunStats {
                sigma,
                n,
                m: self.m,
                l,
                ..Default::default()
            },
            start,
        };
        let session = &*self;
        let result = run_lattice(
            run,
            exec,
            move |exec| session.seed_level(sigma, &ctx, exec),
            evaluate,
        );
        run_span.add_arg("levels", result.stats.levels.len());
        self.exec.metrics().counter("core.session.queries").inc();
        Ok(result)
    }

    /// Runs a query through the anytime best-first engine instead of the
    /// level-wise lattice — the serving path for deadline-budgeted
    /// requests (`budget_ms` / `max_evals` / `frontier_bytes`).
    ///
    /// Warm-start behaves exactly like [`DatasetSession::query`]: level 1
    /// is rebuilt from the cached statistics and the frontier's bitmap
    /// pack is column-projected from the session's resident full pack
    /// (bit-identical to the pack a cold run would build). With unlimited
    /// budgets the returned top-K matches [`DatasetSession::query`]
    /// bit-for-bit; under a budget the result carries a certified
    /// optimality gap ([`PriorityResult::gap`]).
    pub fn query_priority(&mut self, query: &SliceQuery) -> Result<PriorityResult> {
        let config = query.config();
        config.validate()?;
        let scope = self
            .exec
            .with_threads(config.parallel.threads())
            .with_simd(config.simd)
            .run_scoped();
        let exec = &scope;
        let start = Instant::now();
        let mut run_span = exec.tracer().span("session.query_priority", "core");
        let (n, l) = (self.n(), self.l());
        let sigma = config.min_support.resolve(n).max(1);
        let ctx = ScoringContext::new(&self.errors, config.alpha);
        // The frontier always runs on bitmaps: seed the engine from the
        // session's resident pack regardless of the query's eval kernel.
        let kept = self.kept_columns(sigma);
        let engine_bits = self.packed(exec).select_cols(&kept, exec);
        let mut engine = EvalEngine::with_packed(config.bitmap_cache_bytes, engine_bits);
        let seed = self.seed_level(sigma, &ctx, exec);
        exec.add_prepare(start.elapsed());
        run_span.add_arg("n", n);
        run_span.add_arg("m", self.m);
        run_span.add_arg("l", l);
        run_span.add_arg("generation", self.generation);
        let mut stats = RunStats {
            sigma,
            n,
            m: self.m,
            l,
            basic_slices: seed.level.len(),
            ..Default::default()
        };
        let run = FrontierRun {
            config,
            ctx,
            sigma,
            max_level: config.max_level.min(self.m),
            start,
        };
        let (topk, anytime, levels) = run_frontier(
            run,
            &seed.proj,
            &seed.level,
            &seed.errors,
            &mut engine,
            exec,
        );
        stats.levels = levels;
        stats.total_elapsed = start.elapsed();
        stats.exec = exec.stats_enabled().then(|| exec.exec_stats());
        let top_k = crate::algorithm::decode_topk(&topk, &seed.proj);
        let (evaluated, exact, gap) = (anytime.evaluated, anytime.exact, anytime.gap);
        stats.anytime = Some(anytime);
        run_span.add_arg("levels", stats.levels.len());
        self.exec.metrics().counter("core.session.queries").inc();
        Ok(PriorityResult {
            result: SliceLineResult { top_k, stats },
            evaluated,
            exact,
            gap,
        })
    }

    /// One-hot columns surviving `ss₀ ≥ σ ∧ se₀ > 0` for this query's σ.
    fn kept_columns(&self, sigma: usize) -> Vec<usize> {
        (0..self.l())
            .filter(|&c| self.ss0[c] >= sigma as f64 && self.se0[c] > 0.0)
            .collect()
    }

    /// Rebuilds the projected level-1 state from the cached statistics —
    /// the warm replacement for `create_and_score_basic_slices`, which
    /// recomputes the same values from the matrix.
    fn seed_level(&self, sigma: usize, ctx: &ScoringContext, exec: &ExecContext) -> LatticeSeed {
        let kept = self.kept_columns(sigma);
        let x_proj = self
            .x
            .select_cols(&kept)
            .expect("kept indices are strictly increasing and in range");
        let col_feature: Vec<u32> = kept.iter().map(|&c| self.col_feature[c]).collect();
        let col_code: Vec<u32> = kept.iter().map(|&c| self.col_code[c]).collect();
        let mut level = LevelState {
            slices: Vec::with_capacity(kept.len()),
            sizes: exec.take_f64(0),
            errors: exec.take_f64(0),
            max_errors: exec.take_f64(0),
            scores: exec.take_f64(0),
        };
        for (new_c, &c) in kept.iter().enumerate() {
            level.slices.push(vec![new_c as u32]);
            level.sizes.push(self.ss0[c]);
            level.errors.push(self.se0[c]);
            level.max_errors.push(self.sm0[c]);
            level.scores.push(ctx.score(self.ss0[c], self.se0[c]));
        }
        let mut errors = exec.take_f64(0);
        errors.extend_from_slice(&self.errors);
        LatticeSeed {
            proj: ProjectedData {
                x: x_proj,
                col_feature,
                col_code,
                orig_col: kept,
            },
            level,
            errors,
        }
    }

    /// The session's full-width bitmap pack, built on first use.
    fn packed(&mut self, exec: &ExecContext) -> &BitMatrix {
        if self.bits.is_none() {
            let _span = exec
                .tracer()
                .span("bitmap.pack", "linalg")
                .arg("rows", self.x.rows())
                .arg("cols", self.x.cols());
            self.bits = Some(BitMatrix::from_csr(&self.x));
        }
        self.bits.as_ref().expect("packed above")
    }

    /// Recomputes the error-dependent halves of Eq. 4 (`se₀`, `sm₀`).
    fn refresh_error_stats(&mut self) {
        self.se0 = self
            .x
            .vecmat(&self.errors)
            .expect("errors validated to be row-aligned");
        let mut sm0 = vec![0.0f64; self.x.cols()];
        for r in 0..self.x.rows() {
            let e = self.errors[r];
            if e == 0.0 {
                continue;
            }
            for &c in self.x.row_cols(r) {
                if e > sm0[c as usize] {
                    sm0[c as usize] = e;
                }
            }
        }
        self.sm0 = sm0;
    }
}

/// The shared `(x0, errors)` validation (mirrors `prepare`'s checks,
/// which stay config-aware on the one-shot path).
fn validate_inputs(x0: &IntMatrix, errors: &[f64]) -> Result<()> {
    let n = x0.rows();
    if n == 0 || x0.cols() == 0 {
        return Err(SliceLineError::InvalidInput {
            reason: format!("empty input: {}x{}", n, x0.cols()),
        });
    }
    if errors.len() != n {
        return Err(SliceLineError::InvalidInput {
            reason: format!("X0 has {n} rows but e has {}", errors.len()),
        });
    }
    validate_errors(errors)
}

fn validate_errors(errors: &[f64]) -> Result<()> {
    for (i, &e) in errors.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            return Err(SliceLineError::InvalidInput {
                reason: format!("error at row {i} is {e}; errors must be finite and >= 0"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SliceLine;
    use crate::config::{EvalKernel, SliceLineConfig};

    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..32u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 2);
            let f2 = 1 + ((i / 4) % 4);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 1 && f1 == 1 { 1.0 } else { 0.05 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config(eval: EvalKernel) -> SliceLineConfig {
        let mut c = SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.95)
            .threads(1)
            .build()
            .unwrap();
        c.eval = eval;
        c
    }

    #[test]
    fn cold_and_warm_queries_match_one_shot() {
        let (x0, e) = planted();
        for eval in [
            EvalKernel::Blocked { block_size: 16 },
            EvalKernel::Fused,
            EvalKernel::Bitmap,
        ] {
            let cfg = config(eval);
            let one_shot = SliceLine::new(cfg.clone()).find_slices(&x0, &e).unwrap();
            let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
            let cold = session.query(&SliceQuery::new(cfg.clone())).unwrap();
            let warm = session.query(&SliceQuery::new(cfg)).unwrap();
            assert_eq!(cold.top_k, one_shot.top_k, "cold vs one-shot, {eval:?}");
            assert_eq!(warm.top_k, one_shot.top_k, "warm vs one-shot, {eval:?}");
            assert_eq!(cold.stats.levels.len(), one_shot.stats.levels.len());
        }
    }

    #[test]
    fn swap_errors_matches_fresh_run() {
        let (x0, e) = planted();
        let cfg = config(EvalKernel::Bitmap);
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        session.query(&SliceQuery::new(cfg.clone())).unwrap();
        // Retrained model: the error mass moves to a different slice.
        let e2: Vec<f64> = (0..32)
            .map(|i| if (i / 2) % 2 == 1 { 0.9 } else { 0.1 })
            .collect();
        session.swap_errors(&e2).unwrap();
        assert_eq!(session.generation(), 1);
        let delta = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        let fresh = SliceLine::new(cfg).find_slices(&x0, &e2).unwrap();
        assert_eq!(delta.top_k, fresh.top_k);
    }

    #[test]
    fn query_threads_follow_config() {
        let (x0, e) = planted();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let mut cfg = config(EvalKernel::Blocked { block_size: 16 });
        cfg.parallel = sliceline_linalg::ParallelConfig::new(4);
        let threaded = session.query(&SliceQuery::new(cfg.clone())).unwrap();
        cfg.parallel = sliceline_linalg::ParallelConfig::serial();
        let serial = session.query(&SliceQuery::new(cfg)).unwrap();
        assert_eq!(threaded.top_k, serial.top_k);
    }

    #[test]
    fn rejects_bad_inputs_and_swaps() {
        let (x0, e) = planted();
        assert!(DatasetSession::new(&x0, &e[1..], &ExecContext::serial()).is_err());
        let mut bad = e.clone();
        bad[3] = -1.0;
        assert!(DatasetSession::new(&x0, &bad, &ExecContext::serial()).is_err());
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        assert!(session.swap_errors(&e[1..]).is_err());
        assert!(session.swap_errors(&bad).is_err());
        // Failed swaps leave the session usable and at generation 0.
        assert_eq!(session.generation(), 0);
        assert!(session
            .query(&SliceQuery::new(config(EvalKernel::Fused)))
            .is_ok());
    }

    #[test]
    fn invalid_query_config_rejected() {
        let (x0, e) = planted();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let mut cfg = config(EvalKernel::Fused);
        cfg.alpha = 2.0;
        assert!(session.query(&SliceQuery::new(cfg)).is_err());
    }

    #[test]
    fn priority_query_matches_one_shot_priority_and_levelwise() {
        let (x0, e) = planted();
        let cfg = config(EvalKernel::Bitmap);
        let one_shot = crate::priority::PrioritySliceLine::new(cfg.clone())
            .find_slices(&x0, &e)
            .unwrap();
        let levelwise = SliceLine::new(cfg.clone()).find_slices(&x0, &e).unwrap();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let warm0 = session
            .query_priority(&SliceQuery::new(cfg.clone()))
            .unwrap();
        let warm1 = session.query_priority(&SliceQuery::new(cfg)).unwrap();
        assert!(warm0.exact);
        assert_eq!(warm0.gap, 0.0);
        assert_eq!(warm0.result.top_k, one_shot.result.top_k);
        assert_eq!(warm1.result.top_k, one_shot.result.top_k);
        assert_eq!(warm0.result.top_k, levelwise.top_k);
        assert!(warm0.result.stats.anytime.is_some());
    }

    #[test]
    fn priority_query_survives_error_swap() {
        let (x0, e) = planted();
        let cfg = config(EvalKernel::Bitmap);
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        session
            .query_priority(&SliceQuery::new(cfg.clone()))
            .unwrap();
        let e2: Vec<f64> = (0..32)
            .map(|i| if (i / 2) % 2 == 1 { 0.9 } else { 0.1 })
            .collect();
        session.swap_errors(&e2).unwrap();
        let delta = session
            .query_priority(&SliceQuery::new(cfg.clone()))
            .unwrap();
        let fresh = crate::priority::PrioritySliceLine::new(cfg)
            .find_slices(&x0, &e2)
            .unwrap();
        assert_eq!(delta.result.top_k, fresh.result.top_k);
    }

    #[test]
    fn budgeted_priority_query_reports_sound_gap() {
        let (x0, e) = planted();
        let mut cfg = config(EvalKernel::Bitmap);
        let exact = {
            let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
            session
                .query_priority(&SliceQuery::new(cfg.clone()))
                .unwrap()
        };
        cfg.max_evals = 7;
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let tiny = session.query_priority(&SliceQuery::new(cfg)).unwrap();
        assert!(tiny.evaluated <= exact.evaluated);
        let kth = tiny
            .result
            .top_k
            .last()
            .map(|s| s.score.max(0.0))
            .unwrap_or(0.0);
        let opt = &exact.result.top_k[0];
        let found = tiny
            .result
            .top_k
            .iter()
            .any(|s| s.score.to_bits() == opt.score.to_bits());
        assert!(
            found || opt.score <= kth + tiny.gap + 1e-12,
            "gap certificate violated: opt={} kth={} gap={}",
            opt.score,
            kth,
            tiny.gap
        );
    }

    #[test]
    fn session_metrics_counters_advance() {
        let (x0, e) = planted();
        let exec = ExecContext::serial();
        let mut session = DatasetSession::new(&x0, &e, &exec).unwrap();
        session
            .query(&SliceQuery::new(config(EvalKernel::Fused)))
            .unwrap();
        session.swap_errors(&e).unwrap();
        let m = exec.metrics();
        assert_eq!(m.counter("core.session.builds").value(), 1);
        assert_eq!(m.counter("core.session.queries").value(), 1);
        assert_eq!(m.counter("core.session.swaps").value(), 1);
    }
}
