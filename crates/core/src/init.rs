//! Initialization (§4.2): scoring the basic 1-predicate slices and
//! projecting `X` onto the columns that survive.
//!
//! Basic slice statistics come straight out of the one-hot encoding
//! (Eq. 4): `ss₀ = colSums(X)ᵀ` and `se₀ = (eᵀ X)ᵀ`. Columns failing
//! `ss₀ ≥ σ ∧ se₀ > 0` can never participate in any interesting slice
//! (their descendants only shrink), so `X` is projected onto the
//! survivors (Algorithm 1, line 12) and all later levels enumerate in the
//! projected column space.

use crate::prepare::PreparedData;
use sliceline_linalg::agg;
use sliceline_linalg::{CsrMatrix, ExecContext};

/// The projected dataset used by levels ≥ 1.
#[derive(Debug, Clone)]
pub struct ProjectedData {
    /// `X` restricted to valid basic-slice columns (`n × k`).
    pub x: CsrMatrix,
    /// For each projected column: the owning original feature.
    pub col_feature: Vec<u32>,
    /// For each projected column: the 1-based value code within the
    /// feature.
    pub col_code: Vec<u32>,
    /// For each projected column: the original one-hot column index.
    pub orig_col: Vec<usize>,
}

/// Per-level slice set with aligned statistics (the paper's `S` and `R`).
#[derive(Debug, Clone, Default)]
pub struct LevelState {
    /// Slice definitions: sorted projected-column ids, one `Vec` per slice.
    pub slices: Vec<Vec<u32>>,
    /// Slice sizes `ss`.
    pub sizes: Vec<f64>,
    /// Total slice errors `se`.
    pub errors: Vec<f64>,
    /// Maximum tuple errors `sm`.
    pub max_errors: Vec<f64>,
    /// Scores `sc`.
    pub scores: Vec<f64>,
}

impl LevelState {
    /// Number of slices at this level.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` when the level holds no slices (termination condition).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

/// Computes basic-slice statistics, selects the valid columns, and builds
/// the level-1 state in projected column space.
///
/// Returns `(projected data, level-1 state, total basic slice count)`.
/// The basic slice count (`l`) is reported so run statistics can show the
/// level-1 "candidates" line of the paper's Table 2.
pub fn create_and_score_basic_slices(
    p: &PreparedData,
    exec: &ExecContext,
) -> (ProjectedData, LevelState) {
    // Eq. 4 — vectorized basic statistics on the one-hot matrix. The
    // parallel column sums add integers (X is binary), so the chunked
    // reduction is exact and any thread count gives identical results.
    let ss0 = if exec.threads() > 1 {
        agg::col_sums_csr_parallel(&p.x, exec)
    } else {
        agg::col_sums_csr(&p.x)
    };
    let se0 =
        p.x.vecmat(&p.errors)
            .expect("errors validated to be row-aligned in prepare()");
    // Max tuple error per column: one scan over the rows.
    let mut sm0 = vec![0.0f64; p.x.cols()];
    for r in 0..p.x.rows() {
        let e = p.errors[r];
        if e == 0.0 {
            continue;
        }
        for &c in p.x.row_cols(r) {
            if e > sm0[c as usize] {
                sm0[c as usize] = e;
            }
        }
    }
    // cI = ss0 >= sigma AND se0 > 0.
    let kept: Vec<usize> = (0..p.x.cols())
        .filter(|&c| ss0[c] >= p.sigma as f64 && se0[c] > 0.0)
        .collect();
    let x_proj =
        p.x.select_cols(&kept)
            .expect("kept indices are strictly increasing and in range");
    let col_feature: Vec<u32> = kept.iter().map(|&c| p.col_feature[c]).collect();
    let col_code: Vec<u32> = kept.iter().map(|&c| p.col_code[c]).collect();
    // Level statistic vectors start from pooled scratch so repeated runs
    // on one context reuse their allocations.
    let mut level = LevelState {
        slices: Vec::with_capacity(kept.len()),
        sizes: exec.take_f64(0),
        errors: exec.take_f64(0),
        max_errors: exec.take_f64(0),
        scores: exec.take_f64(0),
    };
    for (new_c, &c) in kept.iter().enumerate() {
        level.slices.push(vec![new_c as u32]);
        level.sizes.push(ss0[c]);
        level.errors.push(se0[c]);
        level.max_errors.push(sm0[c]);
        level.scores.push(p.ctx.score(ss0[c], se0[c]));
    }
    (
        ProjectedData {
            x: x_proj,
            col_feature,
            col_code,
            orig_col: kept,
        },
        level,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceLineConfig;
    use crate::prepare::prepare;
    use sliceline_frame::IntMatrix;

    fn prepared(sigma: usize) -> PreparedData {
        // Feature 0: domain 2, feature 1: domain 3.
        let x0 =
            IntMatrix::from_rows(&[vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 3], vec![1, 1]])
                .unwrap();
        let errors = vec![1.0, 0.0, 0.5, 0.0, 1.0];
        let cfg = SliceLineConfig::builder()
            .min_support(sigma)
            .build()
            .unwrap();
        prepare(&x0, &errors, &cfg, &ExecContext::serial()).unwrap()
    }

    #[test]
    fn basic_statistics_match_hand_computation() {
        let p = prepared(1);
        let (proj, level) = create_and_score_basic_slices(&p, &ExecContext::serial());
        // Column layout: f0=1, f0=2, f1=1, f1=2, f1=3.
        // Sizes: 3, 2, 3, 1, 1. Errors: 2.0, 0.5, 2.5, 0, 0.
        // Valid (ss>=1, se>0): f0=1, f0=2, f1=1.
        assert_eq!(proj.orig_col, vec![0, 1, 2]);
        assert_eq!(level.sizes, vec![3.0, 2.0, 3.0]);
        assert_eq!(level.errors, vec![2.0, 0.5, 2.5]);
        assert_eq!(level.max_errors, vec![1.0, 0.5, 1.0]);
        assert_eq!(proj.col_feature, vec![0, 0, 1]);
        assert_eq!(proj.col_code, vec![1, 2, 1]);
        assert_eq!(level.len(), 3);
        assert!(!level.is_empty());
        // Projected X has 3 columns.
        assert_eq!(proj.x.cols(), 3);
        assert_eq!(proj.x.rows(), 5);
    }

    #[test]
    fn sigma_filters_small_slices() {
        let p = prepared(3);
        let (proj, level) = create_and_score_basic_slices(&p, &ExecContext::serial());
        // Only sizes >= 3 with positive error: f0=1 (3 rows), f1=1 (3 rows).
        assert_eq!(proj.orig_col, vec![0, 2]);
        assert_eq!(level.len(), 2);
    }

    #[test]
    fn zero_error_columns_dropped() {
        let p = prepared(1);
        let (proj, _) = create_and_score_basic_slices(&p, &ExecContext::serial());
        // f1=2 and f1=3 have zero error and must be gone.
        assert!(!proj.orig_col.contains(&3));
        assert!(!proj.orig_col.contains(&4));
    }

    #[test]
    fn scores_consistent_with_context() {
        let p = prepared(1);
        let (_, level) = create_and_score_basic_slices(&p, &ExecContext::serial());
        for i in 0..level.len() {
            let expect = p.ctx.score(level.sizes[i], level.errors[i]);
            assert_eq!(level.scores[i], expect);
        }
    }

    #[test]
    fn all_filtered_returns_empty_level() {
        let x0 = IntMatrix::from_rows(&[vec![1], vec![2]]).unwrap();
        let cfg = SliceLineConfig::builder().min_support(5).build().unwrap();
        let p = prepare(&x0, &[1.0, 1.0], &cfg, &ExecContext::serial()).unwrap();
        let (proj, level) = create_and_score_basic_slices(&p, &ExecContext::serial());
        assert!(level.is_empty());
        assert_eq!(proj.x.cols(), 0);
    }
}
