//! # sliceline
//!
//! A from-scratch Rust implementation of **SliceLine** (Sagadeeva & Boehm,
//! SIGMOD 2021): fast, linear-algebra-based slice finding for ML model
//! debugging.
//!
//! Given an integer-encoded feature matrix `X₀` and a non-negative,
//! row-aligned error vector `e` produced by some trained model, SliceLine
//! finds the top-K *slices* — conjunctions of feature predicates such as
//! `gender = female AND degree = PhD` — maximizing the score
//!
//! ```text
//! sc = α · (avg_slice_error / avg_error − 1) − (1 − α) · (n / |S| − 1)
//! ```
//!
//! subject to a minimum support `|S| ≥ σ` and `sc > 0` (paper Definitions
//! 1–2). Enumeration is *exact*: monotonicity-based upper bounds for slice
//! sizes, errors, and scores (§3) prune the exponential lattice without
//! ever discarding a slice that could enter the top-K.
//!
//! ## Quick start
//!
//! ```
//! use sliceline::{SliceLine, SliceLineConfig};
//! use sliceline_frame::IntMatrix;
//!
//! // Two features with domains {1,2} and {1,2,3}; 8 rows.
//! let x0 = IntMatrix::from_rows(&[
//!     vec![1, 1], vec![1, 2], vec![1, 3], vec![2, 1],
//!     vec![2, 2], vec![2, 3], vec![1, 1], vec![2, 1],
//! ]).unwrap();
//! // Rows with feature0 = 1 AND feature1 = 1 have high error.
//! let errors = vec![1.0, 0.1, 0.1, 0.0, 0.1, 0.0, 1.0, 0.0];
//!
//! let config = SliceLineConfig::builder()
//!     .k(2)
//!     .min_support(2)
//!     .alpha(0.95)
//!     .build()
//!     .unwrap();
//! let result = SliceLine::new(config).find_slices(&x0, &errors).unwrap();
//! let top = &result.top_k[0];
//! assert_eq!(top.predicates, vec![(0, 1), (1, 1)]);
//! ```
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |-------|--------|
//! | Def. 1, Eq. 1/5 scoring | [`scoring`] |
//! | §3.1 bounds, Eq. 3 | [`scoring::ScoringContext::score_upper_bound`] |
//! | §3.2 pruning switches | [`config::PruningConfig`] |
//! | Alg. 1 lines 1–5 data prep | [`prepare`] |
//! | §4.2 basic slices | [`init`] |
//! | §4.3 pair enumeration | [`enumerate`] |
//! | §4.4 vectorized evaluation | [`evaluate`] |
//! | §4.5 top-K maintenance | [`topk`] |
//! | Alg. 1 driver | [`algorithm`] |
//! | pure-LA reference backend | [`lagraph`] |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algorithm;
pub mod compact;
pub mod config;
pub mod enumerate;
pub mod error;
pub mod evaluate;
pub mod export;
pub mod init;
pub mod lagraph;
pub mod oocore;
pub mod prepare;
pub mod priority;
pub mod scoring;
pub mod session;
pub mod stats;
pub mod topk;

pub use algorithm::{
    emit_funnel, record_compact, run_lattice, LatticeRun, LatticeSeed, SliceInfo, SliceLine,
    SliceLineResult,
};
pub use compact::{maybe_compact, CompactOutcome};
pub use config::{
    CompactKernel, EnumKernel, EvalKernel, MinSupport, PruningConfig, SliceLineConfig,
    SliceLineConfigBuilder,
};
pub use error::{Result, SliceLineError};
pub use evaluate::EvalEngine;
pub use oocore::{find_slices_streamed, find_slices_streamed_in};
pub use priority::{PriorityResult, PrioritySliceLine};
pub use scoring::ScoringContext;
pub use session::{DatasetSession, SliceQuery};
pub use sliceline_linalg::{SimdKernel, SimdLevel};
pub use stats::{AnytimeStats, LevelStats, RunStats};
