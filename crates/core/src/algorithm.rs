//! The overall enumeration driver (Algorithm 1) and result decoding.

use crate::compact::maybe_compact;
use crate::config::SliceLineConfig;
use crate::enumerate::get_pair_candidates;
use crate::error::Result;
use crate::evaluate::{evaluate_slices_with, EvalEngine};
use crate::init::{create_and_score_basic_slices, LevelState, ProjectedData};
use crate::prepare::{prepare, PreparedData};
use crate::scoring::ScoringContext;
use crate::stats::{LevelStats, RunStats};
use crate::topk::TopK;
use sliceline_frame::{FeatureSet, IntMatrix};
use sliceline_linalg::{ArgValue, CsrMatrix, ExecContext, LevelProfile, Stage};
use std::time::Instant;

/// One decoded top-K slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceInfo {
    /// The slice definition as `(feature index, 1-based value code)` pairs,
    /// sorted by feature index. Features not listed are free.
    pub predicates: Vec<(usize, u32)>,
    /// Score `sc` (Definition 1).
    pub score: f64,
    /// Slice size `|S|`.
    pub size: f64,
    /// Total slice error `se`.
    pub error: f64,
    /// Maximum tuple error `sm`.
    pub max_error: f64,
    /// Average slice error `se / |S|`.
    pub avg_error: f64,
}

impl SliceInfo {
    /// Renders the slice as the paper's `K × m` integer row: `codes[j]` is
    /// the selected value of feature `j`, with 0 meaning "free".
    pub fn encode_row(&self, m: usize) -> Vec<u32> {
        let mut row = vec![0u32; m];
        for &(j, code) in &self.predicates {
            row[j] = code;
        }
        row
    }

    /// Human-readable conjunction using feature metadata, e.g.
    /// `degree = PhD AND hours in [40.0000, 48.0000)`.
    pub fn describe(&self, features: &FeatureSet) -> String {
        if self.predicates.is_empty() {
            return "<entire dataset>".to_string();
        }
        self.predicates
            .iter()
            .map(|&(j, code)| features.feature(j).describe(code))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

/// Result of a SliceLine run: the decoded top-K and run statistics.
#[derive(Debug, Clone)]
pub struct SliceLineResult {
    /// Top-K slices in descending score order.
    pub top_k: Vec<SliceInfo>,
    /// Per-level enumeration statistics and timings.
    pub stats: RunStats,
}

/// The SliceLine slice finder (paper Algorithm 1).
///
/// Construct with a validated [`SliceLineConfig`], then call
/// [`SliceLine::find_slices`] with the integer-encoded feature matrix and
/// the model's error vector.
#[derive(Debug, Clone, Default)]
pub struct SliceLine {
    config: SliceLineConfig,
}

impl SliceLine {
    /// Creates a slice finder with the given configuration.
    pub fn new(config: SliceLineConfig) -> Self {
        SliceLine { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SliceLineConfig {
        &self.config
    }

    /// Runs the full enumeration (Algorithm 1) and returns the decoded
    /// top-K slices with run statistics.
    ///
    /// Creates a fresh [`ExecContext`] from the configuration; to share
    /// scratch buffers across runs or collect execution telemetry, build
    /// a context once and call [`SliceLine::find_slices_in`].
    pub fn find_slices(&self, x0: &IntMatrix, errors: &[f64]) -> Result<SliceLineResult> {
        let exec = self.config.exec_context();
        self.find_slices_in(x0, errors, &exec)
    }

    /// Runs the full enumeration on a caller-provided execution context.
    ///
    /// The context supplies the thread pool and the scratch-buffer pool
    /// (level vectors and kernel intermediates are recycled through it).
    /// Telemetry is collected on a per-run scope
    /// ([`ExecContext::run_scoped`]) and returned in [`RunStats::exec`]
    /// when [`ExecContext::enable_stats`] is on, so concurrent runs
    /// sharing one context never clobber each other's statistics.
    ///
    /// This path is equivalent to running a [`SliceQuery`] against a
    /// throwaway [`DatasetSession`]: both execute the same shared
    /// [`run_lattice`] runner, so their results are bit-for-bit
    /// identical.
    ///
    /// [`DatasetSession`]: crate::session::DatasetSession
    /// [`SliceQuery`]: crate::session::SliceQuery
    pub fn find_slices_in(
        &self,
        x0: &IntMatrix,
        errors: &[f64],
        exec: &ExecContext,
    ) -> Result<SliceLineResult> {
        // The config's SIMD choice governs the run even on a caller-built
        // context (the view only swaps kernel implementations, never
        // results).
        let scope = exec.with_simd(self.config.simd).run_scoped();
        let exec = &scope;
        let start = Instant::now();
        let mut run_span = exec.tracer().span("find_slices", "core");
        // a) data preparation.
        let prepared = {
            let _prep_span = exec.tracer().span("prepare", "core");
            prepare(x0, errors, &self.config, exec)?
        };
        exec.add_prepare(start.elapsed());
        run_span.add_arg("n", prepared.n());
        run_span.add_arg("m", prepared.m);
        run_span.add_arg("l", prepared.l());
        let run = LatticeRun {
            config: &self.config,
            ctx: prepared.ctx,
            sigma: prepared.sigma,
            // The evaluation engine carries the bitmap backend's packed
            // columns and parent cache across levels (unused by the
            // blocked/fused kernels); the compaction stage keeps its
            // state aligned with the working set.
            engine: EvalEngine::new(self.config.bitmap_cache_bytes),
            stats: RunStats {
                sigma: prepared.sigma,
                n: prepared.n(),
                m: prepared.m,
                l: prepared.l(),
                ..Default::default()
            },
            start,
        };
        let eval_kernel = self.config.eval;
        let result = run_lattice(
            run,
            exec,
            // b) initialization: basic slices and initial top-K.
            move |exec| {
                let (proj, level) = create_and_score_basic_slices(&prepared, exec);
                let PreparedData { errors, .. } = prepared;
                LatticeSeed {
                    proj,
                    level,
                    errors,
                }
            },
            |x, errors, slices, level, ctx, engine, exec| {
                evaluate_slices_with(x, errors, slices, level, ctx, eval_kernel, exec, engine)
            },
        );
        run_span.add_arg("levels", result.stats.levels.len());
        Ok(result)
    }
}

/// Per-run inputs to [`run_lattice`], produced by a driver's preparation
/// phase — either a one-shot [`prepare`] call or a resident
/// [`DatasetSession`](crate::session::DatasetSession).
pub struct LatticeRun<'a> {
    /// Validated configuration the run executes under.
    pub config: &'a SliceLineConfig,
    /// Dataset-level scoring quantities (Eq. 1/5).
    pub ctx: ScoringContext,
    /// Resolved minimum support `σ`.
    pub sigma: usize,
    /// Evaluation engine; sessions pre-seed it with packed bitmaps so the
    /// per-run `bitmap.pack` cost is amortized away.
    pub engine: EvalEngine,
    /// Run statistics pre-filled with the dataset shape (`sigma`, `n`,
    /// `m`, `l`); the runner appends the per-level entries.
    pub stats: RunStats,
    /// When the run started, so `total_elapsed` includes preparation.
    pub start: Instant,
}

/// What the seeding phase hands to the level loop: the projected dataset,
/// the scored level-1 state, and an owned working copy of the error
/// vector (adaptive compaction gathers all three in place, so session
/// state must stay out of the loop).
pub struct LatticeSeed {
    /// `X` projected onto the valid basic-slice columns.
    pub proj: ProjectedData,
    /// Scored 1-predicate slices aligned with `proj`'s columns.
    pub level: LevelState,
    /// Working copy of the error vector, usually from the context pool.
    pub errors: Vec<f64>,
}

/// The shared level-wise lattice runner (Algorithm 1 lines 6–20) behind
/// every driver: one-shot [`SliceLine`], resident
/// [`DatasetSession`](crate::session::DatasetSession) queries, and the
/// distributed driver all execute their levels here, so result parity
/// between them holds by construction.
///
/// `seed` produces the level-1 state and is timed as the level-1
/// Evaluate stage (a warm session seeds from cached statistics in
/// microseconds; the cold path computes Eq. 4 from scratch). `evaluate`
/// scores one level of candidate slices — the core driver plugs in
/// [`evaluate_slices_with`], the distributed driver its strategy
/// dispatch. `exec` should be a per-run telemetry scope (see
/// [`ExecContext::run_scoped`]); [`RunStats::exec`] is captured from it
/// when stats are enabled.
pub fn run_lattice<S, E>(
    run: LatticeRun<'_>,
    exec: &ExecContext,
    seed: S,
    mut evaluate: E,
) -> SliceLineResult
where
    S: FnOnce(&ExecContext) -> LatticeSeed,
    E: FnMut(
        &CsrMatrix,
        &[f64],
        Vec<Vec<u32>>,
        usize,
        &ScoringContext,
        &mut EvalEngine,
        &ExecContext,
    ) -> LevelState,
{
    let LatticeRun {
        config,
        ctx,
        sigma,
        mut engine,
        mut stats,
        start,
    } = run;
    exec.begin_level(1);
    let level_span = exec.tracer().span("level", "core").arg("level", 1u64);
    let level_start = Instant::now();
    let LatticeSeed {
        mut proj,
        mut level,
        mut errors,
    } = exec.time_stage(Stage::Evaluate, || seed(exec));
    exec.record_level(|p| {
        p.candidates += stats.l as u64;
        p.evaluated += stats.l as u64;
    });
    stats.basic_slices = level.len();
    let max_level = config.max_level.min(stats.m);
    let mut topk = TopK::new(config.k, sigma);
    let entered = exec.time_stage(Stage::TopK, || topk.update(&level));
    exec.record_level(|p| p.topk_entered += entered as u64);
    let outcome = exec.time_stage(Stage::Compact, || {
        maybe_compact(
            // Gathering after the final level would be pure cost.
            config.compact_policy_at(1, max_level),
            config.compact_below,
            &config.pruning,
            &mut proj,
            &mut errors,
            &mut level,
            &mut topk,
            &mut engine,
            &ctx,
            sigma,
            1,
            exec,
        )
    });
    record_compact(exec, &outcome);
    emit_funnel(
        exec,
        &LevelProfile {
            level: 1,
            candidates: stats.l as u64,
            evaluated: stats.l as u64,
            topk_entered: entered as u64,
            rows_retained: outcome.rows_retained as u64,
            cols_retained: outcome.cols_retained as u64,
            ..Default::default()
        },
    );
    stats.levels.push(LevelStats {
        level: 1,
        candidates: stats.l,
        valid: count_valid(&level, sigma),
        enumeration: None,
        elapsed: level_start.elapsed(),
        threshold_after: topk.prune_threshold(),
        rows_retained: outcome.rows_retained,
        cols_retained: outcome.cols_retained,
    });
    drop(level_span);
    // c) level-wise lattice enumeration.
    let mut l = 1usize;
    while !level.is_empty() && l < max_level {
        l += 1;
        exec.begin_level(l);
        let level_span = exec.tracer().span("level", "core").arg("level", l as u64);
        let level_start = Instant::now();
        let (candidates, enum_stats) = exec.time_stage(Stage::Enumerate, || {
            get_pair_candidates(
                &level,
                l,
                &proj.col_feature,
                proj.x.cols(),
                &ctx,
                sigma,
                &config.pruning,
                &topk,
                config.enum_kernel,
                exec,
            )
        });
        let evaluated = candidates.len();
        let next = exec.time_stage(Stage::Evaluate, || {
            evaluate(&proj.x, &errors, candidates, l, &ctx, &mut engine, exec)
        });
        recycle_level(exec, std::mem::replace(&mut level, next));
        let entered = exec.time_stage(Stage::TopK, || topk.update(&level));
        exec.record_level(|p| p.topk_entered += entered as u64);
        let outcome = exec.time_stage(Stage::Compact, || {
            maybe_compact(
                config.compact_policy_at(l, max_level),
                config.compact_below,
                &config.pruning,
                &mut proj,
                &mut errors,
                &mut level,
                &mut topk,
                &mut engine,
                &ctx,
                sigma,
                l,
                exec,
            )
        });
        record_compact(exec, &outcome);
        emit_funnel(
            exec,
            &LevelProfile {
                level: l,
                pairs: enum_stats.pairs as u64,
                candidates: enum_stats.merged_valid as u64,
                deduped: (enum_stats.merged_valid - enum_stats.deduped) as u64,
                pruned_size: enum_stats.pruned_size as u64,
                pruned_score: enum_stats.pruned_score as u64,
                pruned_parents: enum_stats.pruned_parents as u64,
                evaluated: evaluated as u64,
                topk_entered: entered as u64,
                rows_retained: outcome.rows_retained as u64,
                cols_retained: outcome.cols_retained as u64,
                ..Default::default()
            },
        );
        stats.levels.push(LevelStats {
            level: l,
            candidates: evaluated,
            valid: count_valid(&level, sigma),
            enumeration: Some(enum_stats),
            elapsed: level_start.elapsed(),
            threshold_after: topk.prune_threshold(),
            rows_retained: outcome.rows_retained,
            cols_retained: outcome.cols_retained,
        });
        drop(level_span);
    }
    recycle_level(exec, level);
    stats.total_elapsed = start.elapsed();
    stats.exec = exec.stats_enabled().then(|| exec.exec_stats());
    // Decode the top-K back to (feature, value) predicates.
    let top_k = decode_topk(&topk, &proj);
    exec.put_f64(errors);
    SliceLineResult { top_k, stats }
}

/// Emits one level's pruning funnel: a Chrome counter event (rendered as
/// a stacked value track in Perfetto) plus cumulative `core.funnel.*`
/// counters in the metrics registry. The stage values are derived from
/// the same `EnumStats` counters that `--stats` renders, so the trace,
/// the metrics, and the stats table always agree.
///
/// Public so alternative drivers over the same level loop (the
/// distributed driver in `sliceline-dist`) export an identical funnel.
pub fn emit_funnel(exec: &ExecContext, profile: &LevelProfile) {
    let tracer = exec.tracer();
    if tracer.enabled() {
        let mut args: Vec<(&'static str, ArgValue)> = profile
            .funnel()
            .into_iter()
            .map(|(stage, v)| (stage, ArgValue::U64(v)))
            .collect();
        args.push(("topk_entered", ArgValue::U64(profile.topk_entered)));
        args.push(("rows_retained", ArgValue::U64(profile.rows_retained)));
        args.push(("cols_retained", ArgValue::U64(profile.cols_retained)));
        tracer.counter("pruning_funnel", "core", args);
    }
    let metrics = exec.metrics();
    for (stage, v) in profile.funnel() {
        metrics.counter(&format!("core.funnel.{stage}")).add(v);
    }
    metrics
        .counter("core.funnel.topk_entered")
        .add(profile.topk_entered);
}

/// Records a compaction stage's outcome into the per-level telemetry and
/// the `core.compact.*` metrics (which the run manifest embeds).
///
/// Public for the same reason as [`emit_funnel`]: alternative drivers
/// over the level loop report identical compaction telemetry.
pub fn record_compact(exec: &ExecContext, outcome: &crate::compact::CompactOutcome) {
    exec.record_level(|p| {
        p.rows_retained = outcome.rows_retained as u64;
        p.cols_retained = outcome.cols_retained as u64;
    });
    let metrics = exec.metrics();
    metrics
        .gauge("core.compact.rows_retained")
        .set(outcome.rows_retained as f64);
    metrics
        .gauge("core.compact.cols_retained")
        .set(outcome.cols_retained as f64);
    if outcome.compacted {
        metrics.counter("core.compact.fired").add(1);
    }
}

/// Returns a finished level's statistic vectors to the context's scratch
/// pool; safe because the top-K clones everything it keeps.
fn recycle_level(exec: &ExecContext, level: LevelState) {
    let LevelState {
        slices: _,
        sizes,
        errors,
        max_errors,
        scores,
    } = level;
    exec.put_f64(sizes);
    exec.put_f64(errors);
    exec.put_f64(max_errors);
    exec.put_f64(scores);
}

pub(crate) fn count_valid(level: &LevelState, sigma: usize) -> usize {
    (0..level.len())
        .filter(|&i| level.sizes[i] >= sigma as f64 && level.errors[i] > 0.0)
        .count()
}

pub(crate) fn decode_topk(topk: &TopK, proj: &ProjectedData) -> Vec<SliceInfo> {
    topk.entries()
        .iter()
        .map(|e| {
            let mut predicates: Vec<(usize, u32)> = e
                .cols
                .iter()
                .map(|&c| {
                    let c = c as usize;
                    (proj.col_feature[c] as usize, proj.col_code[c])
                })
                .collect();
            predicates.sort_unstable();
            SliceInfo {
                predicates,
                score: e.score,
                size: e.size,
                error: e.error,
                max_error: e.max_error,
                avg_error: if e.size > 0.0 { e.error / e.size } else { 0.0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EvalKernel, PruningConfig, SliceLineConfig};

    /// 16 rows, 3 features. Rows with (f0=1, f1=1) carry all the error.
    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..16u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 2);
            // f2 varies within the planted slice so no single predicate
            // coincides with it.
            let f2 = 1 + ((i / 4) % 4);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 1 && f1 == 1 { 1.0 } else { 0.05 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config() -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.95)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_planted_slice() {
        let (x0, e) = planted();
        let result = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        assert!(!result.top_k.is_empty());
        let top = &result.top_k[0];
        assert_eq!(top.predicates, vec![(0, 1), (1, 1)]);
        assert_eq!(top.size, 4.0);
        assert!((top.error - 4.0).abs() < 1e-12);
        assert!(top.score > 0.0);
        // Scores sorted descending.
        for w in result.top_k.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn stats_reflect_levels() {
        let (x0, e) = planted();
        let result = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        assert_eq!(result.stats.n, 16);
        assert_eq!(result.stats.m, 3);
        assert_eq!(result.stats.l, 8);
        assert!(result.stats.max_level() >= 2);
        assert_eq!(result.stats.levels[0].level, 1);
        assert!(result.stats.basic_slices <= 8);
    }

    #[test]
    fn max_level_caps_enumeration() {
        let (x0, e) = planted();
        let mut c = config();
        c.max_level = 1;
        let result = SliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert_eq!(result.stats.max_level(), 1);
        // Only 1-predicate slices in the result.
        assert!(result.top_k.iter().all(|s| s.predicates.len() == 1));
    }

    #[test]
    fn kernels_and_threads_agree() {
        let (x0, e) = planted();
        let base = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        for threads in [1, 4] {
            for eval in [
                EvalKernel::Blocked { block_size: 1 },
                EvalKernel::Blocked { block_size: 64 },
                EvalKernel::Fused,
                EvalKernel::Bitmap,
                EvalKernel::Auto {
                    block_size: 16,
                    fused_above: 4,
                },
            ] {
                let mut c = config();
                c.eval = eval;
                c.parallel = sliceline_linalg::ParallelConfig::new(threads);
                let r = SliceLine::new(c).find_slices(&x0, &e).unwrap();
                assert_eq!(r.top_k, base.top_k, "eval={eval:?} threads={threads}");
            }
        }
    }

    #[test]
    fn bitmap_run_hits_parent_cache() {
        let (x0, e) = planted();
        let base = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        // Pruning stops this fixture before level 3; disable it so the
        // run actually evaluates children of cached level-2 parents.
        let mut c = config();
        c.eval = EvalKernel::Bitmap;
        c.pruning = PruningConfig::none();
        let exec = c.exec_context();
        exec.enable_stats(true);
        let r = SliceLine::new(c).find_slices_in(&x0, &e, &exec).unwrap();
        assert_eq!(r.top_k, base.top_k);
        let stats = r.stats.exec.expect("stats enabled");
        // Levels >= 3 resolve children through the previous level's
        // cached bitmaps.
        let hits: u64 = stats.levels.iter().map(|p| p.cache_hits).sum();
        assert!(hits > 0, "expected parent-cache hits, stats: {stats:?}");
        // With a zero budget the same run still agrees, cache-free.
        let mut c0 = config();
        c0.eval = EvalKernel::Bitmap;
        c0.pruning = PruningConfig::none();
        c0.bitmap_cache_bytes = 0;
        let exec0 = c0.exec_context();
        exec0.enable_stats(true);
        let r0 = SliceLine::new(c0).find_slices_in(&x0, &e, &exec0).unwrap();
        assert_eq!(r0.top_k, base.top_k);
        let stats0 = r0.stats.exec.expect("stats enabled");
        assert_eq!(stats0.levels.iter().map(|p| p.cache_hits).sum::<u64>(), 0);
    }

    #[test]
    fn pruning_never_changes_results() {
        let (x0, e) = planted();
        let base = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        for pruning in [
            PruningConfig::no_parent_handling(),
            PruningConfig::no_score_pruning(),
            PruningConfig::no_size_pruning(),
            PruningConfig::none(),
        ] {
            let mut c = config();
            c.pruning = pruning;
            let r = SliceLine::new(c).find_slices(&x0, &e).unwrap();
            assert_eq!(r.top_k, base.top_k, "pruning={pruning:?}");
        }
    }

    #[test]
    fn pruning_reduces_work() {
        let (x0, e) = planted();
        let all = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        let mut c = config();
        c.pruning = PruningConfig::none();
        let none = SliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert!(all.stats.total_evaluated() <= none.stats.total_evaluated());
    }

    #[test]
    fn encode_row_and_describe() {
        let (x0, e) = planted();
        let result = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        let top = &result.top_k[0];
        assert_eq!(top.encode_row(3), vec![1, 1, 0]);
        let fs = sliceline_frame::FeatureSet::opaque_from_domains(&[2, 2, 4]);
        assert_eq!(top.describe(&fs), "f0 = 1 AND f1 = 1");
        let empty = SliceInfo {
            predicates: vec![],
            score: 0.0,
            size: 0.0,
            error: 0.0,
            max_error: 0.0,
            avg_error: 0.0,
        };
        assert_eq!(empty.describe(&fs), "<entire dataset>");
    }

    #[test]
    fn zero_error_dataset_returns_empty() {
        let (x0, _) = planted();
        let e = vec![0.0; 16];
        let result = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        assert!(result.top_k.is_empty());
    }

    #[test]
    fn uniform_error_dataset_returns_empty() {
        // All rows identical error: no slice scores above 0.
        let (x0, _) = planted();
        let e = vec![0.5; 16];
        let result = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        assert!(result.top_k.is_empty());
    }

    #[test]
    fn sigma_excludes_small_slices_from_topk() {
        let (x0, e) = planted();
        let mut c = config();
        c.min_support = crate::config::MinSupport::Absolute(5);
        let result = SliceLine::new(c).find_slices(&x0, &e).unwrap();
        for s in &result.top_k {
            assert!(s.size >= 5.0);
        }
    }
}
