//! Vectorized slice evaluation (§4.4, Eq. 10).
//!
//! All candidate slices of a level are evaluated against the (projected)
//! one-hot matrix `X`: a row belongs to a slice iff it matches all `L`
//! predicates, i.e. iff the inner product of its one-hot row with the
//! slice's one-hot vector equals `L`.
//!
//! Two kernels are provided (see [`crate::config::EvalKernel`]):
//!
//! * **Blocked** — the paper's hybrid plan: slices are processed in blocks
//!   of `b`, materializing the dense `n × b` intermediate `(X Sᵀ)` exactly
//!   like a data-parallel LA system would. `b = 1` is the task-parallel
//!   plan (vector intermediates); large `b` approaches the fully
//!   data-parallel plan. The §5.4 block-size experiment sweeps `b`.
//! * **Fused** — a single scan of `X` updating per-slice accumulators
//!   through an inverted index, never materializing the intermediate.
//!   This is the specialization the paper's "simple design" deliberately
//!   forgoes; it serves as an ablation of materialization cost.
//!
//! Both kernels draw their parallelism and scratch memory from the
//! [`ExecContext`]: the blocked `n × b` intermediate and all per-level
//! statistic vectors are checked out of the context's buffer pool, so a
//! multi-level run reuses a handful of allocations instead of re-allocating
//! every level. The fused statistics kernel is also the single source of
//! truth for the distributed path ([`evaluate_slice_stats`]), so local and
//! per-node results cannot drift.

use crate::config::EvalKernel;
use crate::init::LevelState;
use crate::scoring::ScoringContext;
use sliceline_linalg::spgemm::count_matches_block_into;
use sliceline_linalg::{CsrMatrix, ExecContext};

/// Evaluates `slices` (sorted projected-column id lists, all of length
/// `level`) against `x`, returning a fully scored [`LevelState`].
///
/// Records the chosen kernel and evaluated-slice count in the context's
/// telemetry (when enabled).
pub fn evaluate_slices(
    x: &CsrMatrix,
    errors: &[f64],
    slices: Vec<Vec<u32>>,
    level: usize,
    ctx: &ScoringContext,
    kernel: EvalKernel,
    exec: &ExecContext,
) -> LevelState {
    let k = slices.len();
    if k == 0 {
        return LevelState::default();
    }
    let (name, (sizes, errs, max_errs)) = match kernel {
        EvalKernel::Blocked { block_size } => (
            "blocked",
            eval_blocked(x, errors, &slices, level, block_size.max(1), exec),
        ),
        EvalKernel::Fused => ("fused", eval_fused(x, errors, &slices, level, exec)),
        EvalKernel::Auto {
            block_size,
            fused_above,
        } => {
            // Dynamic plan choice per level (the SystemDS recompilation
            // analog): with few candidates the blocked scan sharing wins;
            // with many, rescanning X per block dominates and the fused
            // single-scan kernel is asymptotically better.
            if k > fused_above {
                ("fused", eval_fused(x, errors, &slices, level, exec))
            } else {
                (
                    "blocked",
                    eval_blocked(x, errors, &slices, level, block_size.max(1), exec),
                )
            }
        }
    };
    exec.record_level(|p| {
        p.evaluated += k as u64;
        p.kernel = Some(name);
    });
    let mut scores = exec.take_f64(0);
    ctx.score_all_into(&sizes, &errs, &mut scores);
    LevelState {
        slices,
        sizes,
        errors: errs,
        max_errors: max_errs,
        scores,
    }
}

/// Raw slice statistics `(sizes, errors, max_errors)` via the fused
/// kernel. This is the shared evaluation core: the local path calls it
/// through [`evaluate_slices`] and the simulated cluster calls it per
/// node with a per-node thread view (`exec.with_threads(..)`), so both
/// paths compute identical statistics by construction.
pub fn evaluate_slice_stats(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    if slices.is_empty() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    eval_fused(x, errors, slices, level, exec)
}

/// Blocked evaluation: materializes the `n × b` match-count intermediate
/// per block of slices (paper Eq. 10 with scan sharing). The intermediate
/// lives in one pooled scratch buffer reused across blocks and levels.
fn eval_blocked(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    block_size: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = slices.len();
    let s = CsrMatrix::from_binary_rows(x.cols(), slices)
        .expect("slice column ids are sorted, unique and in range");
    let mut sizes = exec.take_f64(k);
    let mut errs = exec.take_f64(k);
    let mut max_errs = exec.take_f64(k);
    let mut scratch = exec.take_f64(0);
    let target = level as f64;
    let mut start = 0usize;
    while start < k {
        let end = (start + block_size).min(k);
        let b = count_matches_block_into(x, &s, start..end, exec, &mut scratch)
            .expect("block range validated by loop bounds");
        let counts = &scratch;
        // Aggregate the indicator I = (counts == L) into ss/se/sm
        // (colSums(I), eᵀI, colMaxs(I·e)); parallel over row chunks.
        let (bs, be, bm) = exec.parallel().par_reduce(
            x.rows(),
            (vec![0.0; b], vec![0.0; b], vec![0.0; b]),
            |mut acc, r| {
                let row = &counts[r * b..(r + 1) * b];
                let e = errors[r];
                for (j, &c) in row.iter().enumerate() {
                    if c == target {
                        acc.0[j] += 1.0;
                        acc.1[j] += e;
                        if e > acc.2[j] {
                            acc.2[j] = e;
                        }
                    }
                }
                acc
            },
            |mut a, b| {
                for j in 0..a.0.len() {
                    a.0[j] += b.0[j];
                    a.1[j] += b.1[j];
                    if b.2[j] > a.2[j] {
                        a.2[j] = b.2[j];
                    }
                }
                a
            },
        );
        sizes[start..end].copy_from_slice(&bs);
        errs[start..end].copy_from_slice(&be);
        max_errs[start..end].copy_from_slice(&bm);
        start = end;
    }
    exec.put_f64(scratch);
    (sizes, errs, max_errs)
}

/// Fused evaluation: one scan of `X`, per-slice accumulators, no
/// materialized intermediate. Worker-local accumulators are checked out
/// of the context pool and returned after the merge.
fn eval_fused(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = slices.len();
    // Inverted index: projected column -> slice ids containing it.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (sid, cols) in slices.iter().enumerate() {
        for &c in cols {
            inv[c as usize].push(sid as u32);
        }
    }
    let inv = &inv;
    let target = level as u32;
    let ranges = exec.parallel().split_range(x.rows());
    let partials: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let mut sizes = exec.take_f64(k);
                    let mut errs = exec.take_f64(k);
                    let mut max_errs = exec.take_f64(k);
                    let mut counts = exec.take_u32(k);
                    let mut touched = exec.take_u32(0);
                    #[allow(clippy::needless_range_loop)]
                    for r in lo..hi {
                        let e = errors[r];
                        for &c in x.row_cols(r) {
                            for &sid in &inv[c as usize] {
                                if counts[sid as usize] == 0 {
                                    touched.push(sid);
                                }
                                counts[sid as usize] += 1;
                            }
                        }
                        for &sid in &touched {
                            let sid = sid as usize;
                            if counts[sid] == target {
                                sizes[sid] += 1.0;
                                errs[sid] += e;
                                if e > max_errs[sid] {
                                    max_errs[sid] = e;
                                }
                            }
                            counts[sid] = 0;
                        }
                        touched.clear();
                    }
                    exec.put_u32(counts);
                    exec.put_u32(touched);
                    (sizes, errs, max_errs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut partials = partials.into_iter();
    // The first partial becomes the accumulator; the rest merge into it
    // and their buffers go back to the pool.
    let (mut sizes, mut errs, mut max_errs) = partials
        .next()
        .expect("split_range yields at least one range");
    for (ps, pe, pm) in partials {
        for j in 0..k {
            sizes[j] += ps[j];
            errs[j] += pe[j];
            if pm[j] > max_errs[j] {
                max_errs[j] = pm[j];
            }
        }
        exec.put_f64(ps);
        exec.put_f64(pe);
        exec.put_f64(pm);
    }
    (sizes, errs, max_errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-checkable fixture: 6 rows, 4 projected columns
    /// (f0∈{c0,c1}, f1∈{c2,c3}).
    fn fixture() -> (CsrMatrix, Vec<f64>) {
        let rows = vec![
            vec![0, 2], // e=1.0
            vec![0, 3], // e=0.5
            vec![1, 2], // e=0.0
            vec![0, 2], // e=2.0
            vec![1, 3], // e=0.0
            vec![0, 3], // e=0.0
        ];
        let x = CsrMatrix::from_binary_rows(4, &rows).unwrap();
        (x, vec![1.0, 0.5, 0.0, 2.0, 0.0, 0.0])
    }

    fn ctx(errors: &[f64]) -> ScoringContext {
        ScoringContext::new(errors, 0.95)
    }

    #[test]
    fn evaluates_pair_slices_correctly() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 3]];
        let out = evaluate_slices(
            &x,
            &e,
            slices,
            2,
            &c,
            EvalKernel::Blocked { block_size: 2 },
            &ExecContext::serial(),
        );
        // Slice {c0,c2}: rows 0 and 3 -> size 2, err 3.0, max 2.0.
        assert_eq!(out.sizes, vec![2.0, 2.0, 1.0]);
        assert_eq!(out.errors, vec![3.0, 0.5, 0.0]);
        assert_eq!(out.max_errors, vec![2.0, 0.5, 0.0]);
        assert_eq!(out.scores[0], c.score(2.0, 3.0));
    }

    #[test]
    fn blocked_and_fused_agree() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let exec = ExecContext::serial();
        let blocked = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Blocked { block_size: 3 },
            &exec,
        );
        let fused = evaluate_slices(&x, &e, slices, 2, &c, EvalKernel::Fused, &exec);
        assert_eq!(blocked.sizes, fused.sizes);
        assert_eq!(blocked.errors, fused.errors);
        assert_eq!(blocked.max_errors, fused.max_errors);
    }

    #[test]
    fn parallel_matches_serial() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = [vec![0], vec![1], vec![2], vec![3], vec![0, 2]];
        // Mixed levels are not allowed; use level-1 slices only.
        let l1: Vec<Vec<u32>> = slices[..4].to_vec();
        let serial = evaluate_slices(
            &x,
            &e,
            l1.clone(),
            1,
            &c,
            EvalKernel::Blocked { block_size: 16 },
            &ExecContext::serial(),
        );
        for threads in [2, 4] {
            for kernel in [EvalKernel::Blocked { block_size: 2 }, EvalKernel::Fused] {
                let par = evaluate_slices(
                    &x,
                    &e,
                    l1.clone(),
                    1,
                    &c,
                    kernel,
                    &ExecContext::new(threads),
                );
                assert_eq!(par.sizes, serial.sizes);
                assert_eq!(par.errors, serial.errors);
                assert_eq!(par.max_errors, serial.max_errors);
            }
        }
    }

    #[test]
    fn empty_slice_set() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let out = evaluate_slices(
            &x,
            &e,
            Vec::new(),
            2,
            &c,
            EvalKernel::default(),
            &ExecContext::serial(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn slice_matching_no_rows_scores_neg_inf() {
        let (x, e) = fixture();
        let c = ctx(&e);
        // {c1, c3} appears... rows 4 matches {1,3}; use {c1,c2} rows: row 2
        // matches. Construct an impossible combination within one feature:
        // {c0, c1} can never match (both values of feature 0).
        let out = evaluate_slices(
            &x,
            &e,
            vec![vec![0, 1]],
            2,
            &c,
            EvalKernel::default(),
            &ExecContext::serial(),
        );
        assert_eq!(out.sizes, vec![0.0]);
        assert_eq!(out.scores[0], f64::NEG_INFINITY);
    }

    #[test]
    fn auto_kernel_matches_both_plans() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let expect = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Fused,
            &ExecContext::serial(),
        );
        // Below the threshold: blocked plan; above: fused. Same numbers.
        for fused_above in [1usize, 100] {
            let out = evaluate_slices(
                &x,
                &e,
                slices.clone(),
                2,
                &c,
                EvalKernel::Auto {
                    block_size: 2,
                    fused_above,
                },
                &ExecContext::serial(),
            );
            assert_eq!(out.sizes, expect.sizes, "fused_above={fused_above}");
            assert_eq!(out.errors, expect.errors);
        }
    }

    #[test]
    fn block_size_one_is_task_parallel() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![1, 2]];
        let b1 = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Blocked { block_size: 1 },
            &ExecContext::serial(),
        );
        let b16 = evaluate_slices(
            &x,
            &e,
            slices,
            2,
            &c,
            EvalKernel::Blocked { block_size: 16 },
            &ExecContext::serial(),
        );
        assert_eq!(b1.sizes, b16.sizes);
        assert_eq!(b1.errors, b16.errors);
    }

    #[test]
    fn pooled_buffers_do_not_leak_state_between_calls() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        // Poison the pool with dirty buffers of assorted sizes; results
        // must match a context that never pools.
        let exec = ExecContext::new(2);
        exec.put_f64(vec![123.0; 7]);
        exec.put_f64(vec![-4.0; 100]);
        exec.put_u32(vec![9; 3]);
        let fresh = ExecContext::new(2);
        fresh.set_pooling(false);
        for kernel in [EvalKernel::Blocked { block_size: 2 }, EvalKernel::Fused] {
            for _ in 0..3 {
                let pooled = evaluate_slices(&x, &e, slices.clone(), 2, &c, kernel, &exec);
                let plain = evaluate_slices(&x, &e, slices.clone(), 2, &c, kernel, &fresh);
                assert_eq!(pooled.sizes, plain.sizes);
                assert_eq!(pooled.errors, plain.errors);
                assert_eq!(pooled.max_errors, plain.max_errors);
                assert_eq!(pooled.scores, plain.scores);
            }
        }
        assert!(exec.pool_stats().reused() > 0);
    }

    #[test]
    fn stats_kernel_matches_evaluate_slices() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 3]];
        let exec = ExecContext::serial();
        let (sizes, errs, max_errs) = evaluate_slice_stats(&x, &e, &slices, 2, &exec);
        let full = evaluate_slices(&x, &e, slices, 2, &c, EvalKernel::Fused, &exec);
        assert_eq!(sizes, full.sizes);
        assert_eq!(errs, full.errors);
        assert_eq!(max_errs, full.max_errors);
        let empty = evaluate_slice_stats(&x, &e, &[], 2, &exec);
        assert!(empty.0.is_empty() && empty.1.is_empty() && empty.2.is_empty());
    }
}
