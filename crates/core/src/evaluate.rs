//! Vectorized slice evaluation (§4.4, Eq. 10).
//!
//! All candidate slices of a level are evaluated against the (projected)
//! one-hot matrix `X`: a row belongs to a slice iff it matches all `L`
//! predicates, i.e. iff the inner product of its one-hot row with the
//! slice's one-hot vector equals `L`.
//!
//! Three kernels are provided (see [`crate::config::EvalKernel`]):
//!
//! * **Blocked** — the paper's hybrid plan: slices are processed in blocks
//!   of `b`, materializing the dense `n × b` intermediate `(X Sᵀ)` exactly
//!   like a data-parallel LA system would. `b = 1` is the task-parallel
//!   plan (vector intermediates); large `b` approaches the fully
//!   data-parallel plan. The §5.4 block-size experiment sweeps `b`.
//! * **Fused** — a single scan of `X` updating per-slice accumulators
//!   through an inverted index, never materializing the intermediate.
//!   This is the specialization the paper's "simple design" deliberately
//!   forgoes; it serves as an ablation of materialization cost.
//! * **Bitmap** — the packed engine: columns of `X` as `u64` bitmaps, a
//!   slice as the `AND` of its column bitmaps, sizes as popcounts and
//!   error aggregates as a masked scan, with surviving parent bitmaps
//!   cached across levels by the [`EvalEngine`] so a child usually costs
//!   a single `AND` with its one new predicate column.
//!
//! All kernels draw their parallelism and scratch memory from the
//! [`ExecContext`]: the blocked `n × b` intermediate, the bitmap word
//! buffers, and all per-level statistic vectors are checked out of the
//! context's buffer pool, so a multi-level run reuses a handful of
//! allocations instead of re-allocating every level. The fused statistics
//! kernel is the single source of truth for the distributed path
//! ([`evaluate_slice_stats`]); [`evaluate_slice_stats_bitmap`] is its
//! packed counterpart against a prebuilt per-node [`BitMatrix`]. All three
//! kernels accumulate per-slice errors in ascending row order, so on exact
//! partial sums they agree bit-for-bit on `(sizes, errors, max_errors)`.

use crate::config::EvalKernel;
use crate::init::LevelState;
use crate::scoring::ScoringContext;
use sliceline_linalg::bitmap;
use sliceline_linalg::spgemm::count_matches_block_into;
use sliceline_linalg::{BitMatrix, CsrMatrix, ExecContext};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-run state of the bitmap evaluation backend ([`EvalKernel::Bitmap`]).
///
/// Holds the packed column bitmaps of the projected matrix (built lazily on
/// first bitmap evaluation) and a byte-budgeted cache of the previous
/// level's slice bitmaps. The cache is what makes evaluation *incremental*:
/// a level-`L` child whose `(L-1)`-parent bitmap is cached costs one `AND`
/// with its single new predicate column instead of `L` `AND`s from the
/// column bitmaps. When the budget evicts (or caching is disabled with a
/// zero budget) the child silently recomputes from scratch — the cache
/// changes work, never results.
///
/// The level loop owns one engine per run and threads it through
/// [`evaluate_slices_with`]; the plain [`evaluate_slices`] entry point
/// builds a throwaway engine, which evaluates correctly but cannot reuse
/// parents across calls.
pub struct EvalEngine {
    cache_budget: usize,
    bitmap: Option<BitmapState>,
    cost: CostModel,
}

struct BitmapState {
    bits: BitMatrix,
    /// Slice bitmaps of the most recently evaluated level, keyed by the
    /// slice's sorted projected-column ids.
    cache: HashMap<Vec<u32>, Vec<u64>>,
    /// Level whose bitmaps `cache` currently holds (0 = none).
    cache_level: usize,
}

/// Online admission cost model for the parent-bitmap cache.
///
/// The byte budget bounds *memory*; this model bounds *time*. A child is
/// only worth serving from a cached parent when recomputing it from its
/// column bitmaps (`level` ANDs over `wpc` words) is predicted to cost
/// more than the cache-hit path (one fused AND+scan over `wpc` words) —
/// on cache-resident workloads the cold AND chain reuses hot column
/// bitmaps while cached parents stream from RAM, so the hit path can
/// *lose* (the committed 0.36x warm cell). Both sides are calibrated
/// online from wall-clock timings of the two code paths observed during
/// evaluation, normalized to ns-per-word rates and smoothed with an EWMA.
///
/// Rates are kept **per lattice level**: the masked scan costs one
/// `errors[row]` accumulation per set bit, so a dense level-2 slice costs
/// ~10x more per word than a near-empty level-4 slice — one global rate
/// calibrated on early levels would overstate deep-level recompute and
/// lock admission on. Calibration is phased, because each path is only
/// observable when the opposite admission decision was taken at the
/// previous level: while the hit path is globally unsampled the model
/// admits (the legacy byte-budget behavior — early levels cache, later
/// levels hit and feed the hit rate); after that, caching at level `L`
/// stays *off* until level `L+1` itself has been timed running pure
/// recompute (cold work during a caching pass pays the child write and
/// cache insert and is never counted — it would inflate the recompute
/// estimate severalfold). With both rates live it decides per level, and
/// every [`CostModel::REEXPLORE`]-th decision is inverted once so the
/// path the steady decision starves keeps feeding its rate. Matrices
/// narrower than [`COST_SAMPLE_MIN_WPC`] words per column never feed the
/// model, so unit-scale fixtures keep the plain byte-budget behavior.
#[derive(Debug, Default, Clone)]
struct CostModel {
    /// Per-level EWMA cost of the pure recompute path in ns per
    /// (word × column), indexed by `min(level, MAX_TRACKED_LEVEL)`.
    cold: [Rate; CostModel::MAX_TRACKED_LEVEL + 1],
    /// Per-level EWMA cost of the cache-hit path in ns per word.
    hit: [Rate; CostModel::MAX_TRACKED_LEVEL + 1],
    /// Hit observations across all levels (drives the bootstrap phase).
    hit_total: u32,
    /// Calibrated admission decisions taken so far (drives re-exploration).
    passes: u32,
}

/// One EWMA-smoothed ns-per-unit rate with its sample count.
#[derive(Debug, Default, Clone, Copy)]
struct Rate {
    ns_per_unit: f64,
    samples: u32,
}

impl Rate {
    fn observe(&mut self, ns: u64, units: u64) {
        if units == 0 {
            return;
        }
        let rate = ns as f64 / units as f64;
        self.ns_per_unit = if self.samples == 0 {
            rate
        } else {
            CostModel::ALPHA * rate + (1.0 - CostModel::ALPHA) * self.ns_per_unit
        };
        self.samples += 1;
    }
}

/// Words-per-column floor below which evaluation timings are not fed to
/// the [`CostModel`] (timer overhead would dominate the sample, and
/// unit-test fixtures must keep deterministic admission).
const COST_SAMPLE_MIN_WPC: usize = 16;

impl CostModel {
    /// EWMA smoothing factor for new rate samples.
    const ALPHA: f64 = 0.3;
    /// Observations of each path required before the model overrides the
    /// bootstrap always-admit policy.
    const MIN_SAMPLES: u32 = 2;
    /// Safety factor: predicted recompute must beat the hit path by this
    /// much before a cached parent is considered worth keeping.
    const MARGIN: f64 = 1.2;
    /// Every this-many calibrated decisions, invert one so the path the
    /// steady decision starves keeps feeding its rate (workloads drift:
    /// deeper levels, wider column working sets).
    const REEXPLORE: u32 = 32;
    /// Levels at or above this share one rate slot (lattice walks rarely
    /// get this deep, and slice density has long flattened out by then).
    const MAX_TRACKED_LEVEL: usize = 16;

    fn idx(level: usize) -> usize {
        level.min(Self::MAX_TRACKED_LEVEL)
    }

    /// Feeds one level's aggregate *pure recompute* timing (`word_cols` =
    /// cold slices × level × words-per-column). Only passes with caching
    /// off report here — cold work during a caching pass also pays
    /// materialization and is not the admission counterfactual.
    fn observe_cold(&mut self, level: usize, ns: u64, word_cols: u64) {
        self.cold[Self::idx(level)].observe(ns, word_cols);
    }

    /// Feeds one level's aggregate cache-hit timing (`words` = hits ×
    /// words-per-column).
    fn observe_hit(&mut self, level: usize, ns: u64, words: u64) {
        if words == 0 {
            return;
        }
        self.hit[Self::idx(level)].observe(ns, words);
        self.hit_total += 1;
    }

    /// Should this level's children be cached as parents for level
    /// `child_level`? Calibrated answer: admit iff the predicted
    /// recompute cost of a child (`cold_rate[child] × child_level × wpc`)
    /// exceeds the predicted hit cost (`hit_rate[child] × wpc`) with
    /// margin. Uncalibrated: admit while the hit path is globally
    /// unsampled, then refuse until the child level itself has been timed
    /// running pure recompute — admission requires level-local evidence
    /// that hits win, and the exploration cost of gathering it is just
    /// recompute, which is exactly what an unprofitable cache avoids.
    fn plan(&mut self, wpc: usize, child_level: usize) -> bool {
        if self.hit_total < Self::MIN_SAMPLES {
            return true;
        }
        let cold = self.cold[Self::idx(child_level)];
        if cold.samples < Self::MIN_SAMPLES {
            return false;
        }
        // A child level that has never hit yet borrows the nearest
        // sampled hit rate rather than blocking on evidence only an
        // admitting pass could produce (the bootstrap phase guarantees
        // at least one level has hit samples by now).
        let hit_rate = {
            let at = Self::idx(child_level);
            (0..self.hit.len())
                .filter(|&l| self.hit[l].samples > 0)
                .min_by_key(|&l| l.abs_diff(at))
                .map(|l| self.hit[l].ns_per_unit)
                .unwrap_or(f64::INFINITY)
        };
        let recompute = cold.ns_per_unit * (child_level * wpc) as f64;
        let hit = hit_rate * wpc as f64;
        let admit = recompute > Self::MARGIN * hit;
        self.passes += 1;
        if self.passes.is_multiple_of(Self::REEXPLORE) {
            return !admit;
        }
        admit
    }
}

impl EvalEngine {
    /// Default parent-cache budget (64 MiB), also the default of
    /// [`crate::SliceLineConfig::bitmap_cache_bytes`].
    pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

    /// Creates an engine with the given parent-cache byte budget
    /// (0 disables incremental parent reuse).
    pub fn new(cache_budget: usize) -> Self {
        EvalEngine {
            cache_budget,
            bitmap: None,
            cost: CostModel::default(),
        }
    }

    /// Creates an engine pre-seeded with the packed column bitmaps of the
    /// matrix the first evaluation will see.
    ///
    /// This is the warm-start path for resident dataset sessions: the
    /// session packs its full one-hot matrix once, column-projects the
    /// pack per query, and hands the result here so the per-run
    /// `bitmap.pack` span never fires. Seeding is purely a work saver —
    /// if `bits` does not match the evaluated matrix's shape, the engine
    /// rebuilds from the matrix exactly as an unseeded one would.
    pub fn with_packed(cache_budget: usize, bits: BitMatrix) -> Self {
        EvalEngine {
            cache_budget,
            bitmap: Some(BitmapState {
                bits,
                cache: HashMap::new(),
                cache_level: 0,
            }),
            cost: CostModel::default(),
        }
    }

    /// The packed bitmap state for `x`, building (or rebuilding, if the
    /// projected matrix changed shape) it on first use.
    ///
    /// A rebuild is a geometry change: the retired cache's buffers are
    /// sized for the *old* row width, so they are drained into the word
    /// pool here (the pool resizes on checkout, so stale-width capacity
    /// can never alias a new-width read) instead of lingering keyed under
    /// the new geometry.
    fn state(&mut self, x: &CsrMatrix, exec: &ExecContext) -> &mut BitmapState {
        let stale = match &self.bitmap {
            Some(s) => s.bits.rows() != x.rows() || s.bits.cols() != x.cols(),
            None => true,
        };
        if stale {
            if let Some(old) = self.bitmap.take() {
                for (_, buf) in old.cache {
                    exec.put_u64(buf);
                }
                old.bits.recycle(exec);
            }
            let _span = exec
                .tracer()
                .span("bitmap.pack", "linalg")
                .arg("rows", x.rows())
                .arg("cols", x.cols());
            self.bitmap = Some(BitmapState {
                bits: BitMatrix::from_csr(x),
                cache: HashMap::new(),
                cache_level: 0,
            });
        }
        self.bitmap.as_mut().expect("state built above")
    }

    /// The packed column bitmaps for `x`, building them on first use.
    ///
    /// This is the anytime frontier engine's entry into the shared pack
    /// state: `PrioritySliceLine` seeds its root nodes straight from these
    /// column bitmaps, so a warm session engine ([`Self::with_packed`])
    /// serves priority queries without re-packing.
    pub(crate) fn packed_bits(&mut self, x: &CsrMatrix, exec: &ExecContext) -> &BitMatrix {
        &self.state(x, exec).bits
    }

    /// Row-coverage union of `slices` as a packed bitmap, served from the
    /// engine's column bitmaps (and cached slice bitmaps where present).
    /// Returns `None` when the engine holds no bitmap state for `x`'s
    /// shape — the caller then falls back to a CSR coverage pass.
    pub fn coverage<'a>(
        &self,
        x: &CsrMatrix,
        slices: impl Iterator<Item = &'a [u32]>,
        exec: &ExecContext,
    ) -> Option<Vec<u64>> {
        let state = self.bitmap.as_ref()?;
        if state.bits.rows() != x.rows() || state.bits.cols() != x.cols() {
            return None;
        }
        let mut cov = exec.take_u64(state.bits.words_per_col());
        let mut buf = exec.take_u64(0);
        for cols in slices {
            // After this level's evaluation the cache holds exactly this
            // level's slice bitmaps (when admitted), so most ORs are free.
            if let Some(cached) = state.cache.get(cols) {
                bitmap::or_into(&mut cov, cached);
            } else {
                state.bits.and_cols_into(cols, &mut buf);
                bitmap::or_into(&mut cov, &buf);
            }
        }
        exec.put_u64(buf);
        Some(cov)
    }

    /// Gathers the engine's bitmap state into a compacted index space:
    /// the column bitmaps are repacked to the kept rows/columns and every
    /// cached parent bitmap is re-keyed through `col_remap` and re-packed
    /// to the new row width. Byte-budget accounting is redone at the new
    /// width (an entry's footprint shrinks with the row count), and
    /// retired old-width buffers go back to the word pool — never left
    /// keyed under the new geometry.
    ///
    /// `old_shape` is the projected matrix shape the caller compacted
    /// *from*; state built for any other shape is stale and is dropped
    /// instead of gathered.
    pub fn compact(
        &mut self,
        old_shape: (usize, usize),
        keep: &[u64],
        kept_rows: usize,
        cols: &[usize],
        col_remap: &[u32],
        exec: &ExecContext,
    ) {
        let Some(state) = self.bitmap.as_mut() else {
            return;
        };
        if (state.bits.rows(), state.bits.cols()) != old_shape {
            // Stale geometry (e.g. the engine last ran on a different
            // projection): gathering would mix index spaces. Drop it; the
            // next bitmap evaluation repacks from the compacted matrix.
            if let Some(old) = self.bitmap.take() {
                for (_, buf) in old.cache {
                    exec.put_u64(buf);
                }
                old.bits.recycle(exec);
            }
            return;
        }
        let new_bits = state.bits.gather_rows(keep, kept_rows, cols, exec);
        let old_bits = std::mem::replace(&mut state.bits, new_bits);
        old_bits.recycle(exec);
        let new_wpc = state.bits.words_per_col();
        let mut bytes = 0usize;
        let old_cache = std::mem::take(&mut state.cache);
        state.cache.reserve(old_cache.len());
        for (key, buf) in old_cache {
            let cost = new_wpc * 8 + key.len() * 4 + 48;
            if bytes + cost > self.cache_budget {
                exec.put_u64(buf);
                continue;
            }
            let mut packed = exec.take_u64(new_wpc);
            bitmap::gather_bits(&buf, keep, &mut packed);
            exec.put_u64(buf);
            let new_key: Vec<u32> = key.iter().map(|&c| col_remap[c as usize]).collect();
            debug_assert!(new_key.iter().all(|&c| c != u32::MAX));
            bytes += cost;
            state.cache.insert(new_key, packed);
        }
    }
}

impl Default for EvalEngine {
    fn default() -> Self {
        EvalEngine::new(EvalEngine::DEFAULT_CACHE_BYTES)
    }
}

/// Evaluates `slices` (sorted projected-column id lists, all of length
/// `level`) against `x`, returning a fully scored [`LevelState`].
///
/// Records the chosen kernel and evaluated-slice count in the context's
/// telemetry (when enabled). Builds a throwaway [`EvalEngine`]; use
/// [`evaluate_slices_with`] to reuse parent bitmaps across levels.
pub fn evaluate_slices(
    x: &CsrMatrix,
    errors: &[f64],
    slices: Vec<Vec<u32>>,
    level: usize,
    ctx: &ScoringContext,
    kernel: EvalKernel,
    exec: &ExecContext,
) -> LevelState {
    let mut engine = EvalEngine::default();
    evaluate_slices_with(x, errors, slices, level, ctx, kernel, exec, &mut engine)
}

/// [`evaluate_slices`] with a caller-owned [`EvalEngine`], so the bitmap
/// backend's column bitmaps and parent cache persist across levels.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_slices_with(
    x: &CsrMatrix,
    errors: &[f64],
    slices: Vec<Vec<u32>>,
    level: usize,
    ctx: &ScoringContext,
    kernel: EvalKernel,
    exec: &ExecContext,
    engine: &mut EvalEngine,
) -> LevelState {
    let k = slices.len();
    if k == 0 {
        return LevelState::default();
    }
    let (name, (sizes, errs, max_errs)) = match kernel {
        EvalKernel::Blocked { block_size } => (
            "blocked",
            eval_blocked(x, errors, &slices, level, block_size.max(1), exec),
        ),
        EvalKernel::Fused => ("fused", eval_fused(x, errors, &slices, level, exec)),
        EvalKernel::Bitmap => (
            "bitmap",
            eval_bitmap(x, errors, &slices, level, exec, engine),
        ),
        EvalKernel::Auto {
            block_size,
            fused_above,
        } => {
            // Dynamic plan choice per level (the SystemDS recompilation
            // analog): with few candidates the blocked scan sharing wins;
            // with many, per-candidate cost dominates and the packed
            // AND/popcount engine (with parent reuse) is much cheaper
            // per slice.
            if k > fused_above {
                (
                    "bitmap",
                    eval_bitmap(x, errors, &slices, level, exec, engine),
                )
            } else {
                (
                    "blocked",
                    eval_blocked(x, errors, &slices, level, block_size.max(1), exec),
                )
            }
        }
    };
    exec.record_level(|p| {
        p.evaluated += k as u64;
        p.kernel = Some(name);
    });
    let mut scores = exec.take_f64(0);
    ctx.score_all_into(&sizes, &errs, &mut scores);
    LevelState {
        slices,
        sizes,
        errors: errs,
        max_errors: max_errs,
        scores,
    }
}

/// Raw slice statistics `(sizes, errors, max_errors)` via the fused
/// kernel. This is the shared evaluation core: the local path calls it
/// through [`evaluate_slices`] and the simulated cluster calls it per
/// node with a per-node thread view (`exec.with_threads(..)`), so both
/// paths compute identical statistics by construction.
pub fn evaluate_slice_stats(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    if slices.is_empty() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    eval_fused(x, errors, slices, level, exec)
}

/// Raw slice statistics `(sizes, errors, max_errors)` via the bitmap
/// kernel against a prebuilt [`BitMatrix`] — the packed counterpart of
/// [`evaluate_slice_stats`]. The simulated cluster packs each node's row
/// partition once and calls this per level, so the per-node scan cost
/// drops from the sparse-float row walk to word-wise `AND`s. No parent
/// cache is kept here; slices are always built from their column bitmaps.
pub fn evaluate_slice_stats_bitmap(
    bits: &BitMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = slices.len();
    if k == 0 {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let stats = exec.parallel().par_map(k, |i| {
        let mut buf = exec.take_u64(0);
        bits.and_cols_into(&slices[i], &mut buf);
        let s = bitmap::masked_stats(&buf, errors);
        exec.put_u64(buf);
        s
    });
    unzip_stats(stats, exec)
}

/// Splits per-slice `(|S|, se, sm)` triples into the three pooled
/// statistic vectors every kernel returns.
fn unzip_stats(stats: Vec<(f64, f64, f64)>, exec: &ExecContext) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = stats.len();
    let mut sizes = exec.take_f64(k);
    let mut errs = exec.take_f64(k);
    let mut max_errs = exec.take_f64(k);
    for (i, (ss, se, sm)) in stats.into_iter().enumerate() {
        sizes[i] = ss;
        errs[i] = se;
        max_errs[i] = sm;
    }
    (sizes, errs, max_errs)
}

/// Packed-bitmap evaluation (the tentpole kernel): each slice bitmap is
/// the `AND` of its column bitmaps — or, when the engine's parent cache
/// holds an `(L-1)`-subset from the previous level, the cached parent
/// `AND`ed with the one remaining column. Statistics come from popcount
/// plus a masked scan of the error vector in ascending row order (the same
/// association as a serial scan, so exact sums agree with the other
/// kernels bit-for-bit).
///
/// Two optimizations beyond the per-slice loop:
///
/// * **Sibling batching** — candidates arrive grouped by their shared
///   length-`(L-1)` prefix (candidate generation emits the children of a
///   parent pair adjacently). Each group ANDs its prefix once, then
///   streams every member's distinguishing column against it; groups that
///   are not retained for the cache go through
///   [`bitmap::masked_stats_and2_multi`], which loads each prefix word
///   and each selected `errors` cache line once for up to
///   [`bitmap::MULTI_WAY`] siblings instead of once per slice.
/// * **Cost-model admission** — the [`CostModel`] decides per level
///   whether this level's bitmaps are worth caching as next-level
///   parents; on cache-resident workloads where the hit path loses to
///   recompute it shuts admission off (counted as `cache_bypass`).
///
/// Parallelism is over sibling groups (each worker owns disjoint result
/// indexes); when there are fewer candidates than threads over a tall
/// matrix the kernel switches to word-chunked parallelism inside each
/// slice instead.
fn eval_bitmap(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    exec: &ExecContext,
    engine: &mut EvalEngine,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let budget = engine.cache_budget;
    // Split borrows: the closures below hold the bitmap state immutably
    // while the cost model is read before and updated after evaluation.
    engine.state(x, exec);
    let EvalEngine { bitmap, cost, .. } = engine;
    let state = bitmap.as_mut().expect("state built above");
    let bits = &state.bits;
    let wpc = bits.words_per_col();
    let k = slices.len();
    let simd_lv = exec.simd();
    let mut kernel_span = exec
        .tracer()
        .span("bitmap.eval", "linalg")
        .arg("slices", k)
        .arg("level", level);
    // The cache holds the previous level's slice bitmaps. Lookups only pay
    // from level 3 up: a level-2 child is a plain two-column AND whether or
    // not its single-column parent is at hand.
    // (An empty map — e.g. the previous level was cost-model-vetoed —
    // must not charge every slice the key-build + probe overhead.)
    let lookup = (level >= 3 && state.cache_level + 1 == level && !state.cache.is_empty())
        .then_some(&state.cache);
    // This level's bitmaps become the next level's parents. Approximate
    // per-entry footprint: words + key + map overhead.
    let entry_cost = wpc * 8 + level * 4 + 48;
    // Feed the model only when columns are wide enough for wall-clock
    // timings to mean anything.
    let sample = wpc >= COST_SAMPLE_MIN_WPC;
    // The cost model can veto caching outright when serving children from
    // cached parents is predicted slower than recomputing them. Narrow
    // matrices never consult it (deterministic byte-budget admission).
    let cost_admit = !sample || cost.plan(wpc, level + 1);
    let cache_children = budget > 0 && level >= 2 && cost_admit;
    let next_bytes = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let bypass = AtomicU64::new(0);
    let cold_ns = AtomicU64::new(0);
    let cold_word_cols = AtomicU64::new(0);
    let hit_ns = AtomicU64::new(0);
    let hit_words = AtomicU64::new(0);
    // Budget admission races only over-reserve transiently; the cache
    // bounds work, not results, so approximate is fine. Admitted buffers
    // ride back in the result and are collected into the next level's
    // cache serially below — a shared locked map here costs several
    // times the word passes it would guard.
    let admit = || -> bool {
        if !cache_children {
            return false;
        }
        if next_bytes.fetch_add(entry_cost, Ordering::Relaxed) + entry_cost <= budget {
            return true;
        }
        next_bytes.fetch_sub(entry_cost, Ordering::Relaxed);
        bypass.fetch_add(1, Ordering::Relaxed);
        false
    };
    // Per-slice stats plus the child bitmap when admitted to the cache.
    type SliceEval = ((f64, f64, f64), Option<Vec<u64>>);
    // Serve one slice from a cached parent if any (L-1)-subset evaluated
    // last level is at hand; probe by dropping each column, last (the
    // merge-appended one) first. One key buffer serves every probe: the
    // key dropping column `d` differs from the key dropping `d + 1` only
    // at position `d`, so each step is a single overwrite, not a rebuild.
    let probe_hit = |cols: &[u32]| -> Option<SliceEval> {
        let cache = lookup?;
        let mut key: Vec<u32> = cols[..cols.len() - 1].to_vec();
        for drop in (0..cols.len()).rev() {
            if drop + 1 < cols.len() {
                key[drop] = cols[drop + 1];
            }
            if let Some(parent) = cache.get(&key) {
                hits.fetch_add(1, Ordering::Relaxed);
                let col = bits.col(cols[drop] as usize);
                let t0 = sample.then(Instant::now);
                let res = if admit() {
                    // The child is retained for the next level: one fused
                    // pass materializes it (`child = parent & column`, no
                    // separate copy), then the usual masked scan.
                    let mut buf = exec.take_u64(0);
                    bitmap::and2_into_with(simd_lv, &mut buf, parent, col);
                    let stats = bitmap::masked_stats_with(simd_lv, &buf, errors);
                    (stats, Some(buf))
                } else {
                    // Not retained: fold the AND into the stats scan and
                    // never materialize the child at all — one read-only
                    // pass, no scratch buffer.
                    let stats = bitmap::masked_stats_and2_with(simd_lv, parent, col, errors);
                    (stats, None)
                };
                if let Some(t0) = t0 {
                    hit_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    hit_words.fetch_add(wpc as u64, Ordering::Relaxed);
                }
                return Some(res);
            }
        }
        misses.fetch_add(1, Ordering::Relaxed);
        None
    };
    // Evaluate one sibling group `slices[start..end]` (shared length-(L-1)
    // prefix): cache hits individually, cold members batched against the
    // group's prefix bitmap.
    let eval_group = |start: usize, end: usize| -> Vec<SliceEval> {
        let mut out: Vec<Option<SliceEval>> = vec![None; end - start];
        let mut cold: Vec<usize> = Vec::with_capacity(end - start);
        for i in start..end {
            match probe_hit(&slices[i]) {
                Some(res) => out[i - start] = Some(res),
                None => cold.push(i),
            }
        }
        if !cold.is_empty() {
            let t0 = sample.then(Instant::now);
            if cold.len() >= 2 && level >= 2 {
                // AND the shared prefix once for the whole group (at
                // level 2 the prefix is a single column as-is).
                let prefix_cols = &slices[cold[0]][..level - 1];
                let mut pbuf = exec.take_u64(0);
                let prefix: &[u64] = if level == 2 {
                    bits.col(prefix_cols[0] as usize)
                } else {
                    bits.and_cols_into_with(simd_lv, prefix_cols, &mut pbuf);
                    &pbuf
                };
                if cache_children {
                    // Retained children must be materialized anyway, so
                    // the batch saves the (L-2) prefix ANDs per member.
                    for &i in &cold {
                        let last = *slices[i].last().expect("level >= 2") as usize;
                        let col = bits.col(last);
                        let res = if admit() {
                            let mut buf = exec.take_u64(0);
                            bitmap::and2_into_with(simd_lv, &mut buf, prefix, col);
                            let stats = bitmap::masked_stats_with(simd_lv, &buf, errors);
                            (stats, Some(buf))
                        } else {
                            let stats =
                                bitmap::masked_stats_and2_with(simd_lv, prefix, col, errors);
                            (stats, None)
                        };
                        out[i - start] = Some(res);
                    }
                } else {
                    // Nothing is retained: interleaved multi-slice scan —
                    // one pass over the prefix and the error vector per
                    // MULTI_WAY siblings.
                    let mut stats = [(0.0, 0.0, 0.0); bitmap::MULTI_WAY];
                    for chunk in cold.chunks(bitmap::MULTI_WAY) {
                        let cols_refs: Vec<&[u64]> = chunk
                            .iter()
                            .map(|&i| bits.col(*slices[i].last().expect("level >= 2") as usize))
                            .collect();
                        bitmap::masked_stats_and2_multi(
                            prefix,
                            &cols_refs,
                            errors,
                            &mut stats[..chunk.len()],
                        );
                        for (j, &i) in chunk.iter().enumerate() {
                            out[i - start] = Some((stats[j], None));
                        }
                    }
                }
                exec.put_u64(pbuf);
            } else {
                for &i in &cold {
                    let cols = &slices[i][..];
                    if level == 1 {
                        // A level-1 slice *is* its column bitmap: scan it
                        // in place, no AND, no scratch copy (children are
                        // never cached below level 2).
                        let col = bits.col(cols[0] as usize);
                        let stats = bitmap::masked_stats_with(simd_lv, col, errors);
                        out[i - start] = Some((stats, None));
                        continue;
                    }
                    let mut buf = exec.take_u64(0);
                    bits.and_cols_into_with(simd_lv, cols, &mut buf);
                    let stats = bitmap::masked_stats_with(simd_lv, &buf, errors);
                    let res = if admit() {
                        (stats, Some(buf))
                    } else {
                        exec.put_u64(buf);
                        (stats, None)
                    };
                    out[i - start] = Some(res);
                }
            }
            if let Some(t0) = t0 {
                cold_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                cold_word_cols.fetch_add((cold.len() * level * wpc) as u64, Ordering::Relaxed);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every group member evaluated"))
            .collect()
    };
    // Sibling groups: maximal runs of consecutive slices sharing the
    // length-(L-1) prefix. Candidate generation emits the children of one
    // parent pair adjacently, so groups are typically several wide; any
    // grouping is correct — a run of one evaluates exactly like before.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    if level >= 2 {
        let mut start = 0usize;
        for i in 1..=k {
            if i == k || slices[i][..level - 1] != slices[start][..level - 1] {
                groups.push((start, i));
                start = i;
            }
        }
    } else {
        groups.extend((0..k).map(|i| (i, i + 1)));
    }
    let word_parallel = exec.threads() > 1 && k < exec.threads() && wpc >= 2 * bitmap::WORD_BITS;
    let results: Vec<SliceEval> = if word_parallel {
        // Few tall slices: parallelize over words inside each slice
        // instead of over groups.
        slices
            .iter()
            .map(|cols| {
                if let Some(res) = probe_hit(cols) {
                    return res;
                }
                let mut buf = exec.take_u64(0);
                bits.and_cols_into_parallel(cols, &mut buf, exec);
                let stats = bitmap::masked_stats_parallel(&buf, errors, exec);
                if admit() {
                    (stats, Some(buf))
                } else {
                    exec.put_u64(buf);
                    (stats, None)
                }
            })
            .collect()
    } else {
        let per_group = exec.parallel().par_map(groups.len(), |g| {
            let (start, end) = groups[g];
            eval_group(start, end)
        });
        per_group.into_iter().flatten().collect()
    };
    // Children that would have been cached under the byte budget but were
    // vetoed by the cost model are bypasses too (admit() was never asked).
    if budget > 0 && level >= 2 && !cost_admit {
        bypass.fetch_add(k as u64, Ordering::Relaxed);
    }
    let (hits_v, misses_v, bypass_v) = (
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        bypass.load(Ordering::Relaxed),
    );
    exec.record_level(|p| {
        p.cache_hits += hits_v;
        p.cache_misses += misses_v;
        p.cache_bypass += bypass_v;
    });
    kernel_span.add_arg("cache_hits", hits_v);
    kernel_span.add_arg("cache_misses", misses_v);
    kernel_span.add_arg("cache_bypass", bypass_v);
    if !cache_children {
        // Cold work under a caching pass pays the child write + insert
        // and would overstate recompute; only the pure path calibrates.
        cost.observe_cold(
            level,
            cold_ns.load(Ordering::Relaxed),
            cold_word_cols.load(Ordering::Relaxed),
        );
    }
    cost.observe_hit(
        level,
        hit_ns.load(Ordering::Relaxed),
        hit_words.load(Ordering::Relaxed),
    );
    let mut next_cache = HashMap::with_capacity(results.len().min(1024));
    let mut stats = Vec::with_capacity(k);
    for (i, (s, retained)) in results.into_iter().enumerate() {
        stats.push(s);
        if let Some(buf) = retained {
            next_cache.insert(slices[i].clone(), buf);
        }
    }
    // The outgoing level's parents feed the word pool instead of the
    // allocator, so next level's retained children start from recycled
    // capacity.
    for (_, buf) in state.cache.drain() {
        exec.put_u64(buf);
    }
    state.cache = next_cache;
    state.cache_level = level;
    unzip_stats(stats, exec)
}

/// Blocked evaluation: materializes the `n × b` match-count intermediate
/// per block of slices (paper Eq. 10 with scan sharing). The intermediate
/// lives in one pooled scratch buffer reused across blocks and levels.
fn eval_blocked(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    block_size: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = slices.len();
    let _span = exec
        .tracer()
        .span("blocked.eval", "linalg")
        .arg("slices", k)
        .arg("level", level)
        .arg("block_size", block_size);
    let s = CsrMatrix::from_binary_rows(x.cols(), slices)
        .expect("slice column ids are sorted, unique and in range");
    let mut sizes = exec.take_f64(k);
    let mut errs = exec.take_f64(k);
    let mut max_errs = exec.take_f64(k);
    let mut scratch = exec.take_f64(0);
    let target = level as f64;
    let mut start = 0usize;
    while start < k {
        let end = (start + block_size).min(k);
        let b = count_matches_block_into(x, &s, start..end, exec, &mut scratch)
            .expect("block range validated by loop bounds");
        let counts = &scratch;
        // Aggregate the indicator I = (counts == L) into ss/se/sm
        // (colSums(I), eᵀI, colMaxs(I·e)); parallel over row chunks.
        let (bs, be, bm) = exec.parallel().par_reduce(
            x.rows(),
            (vec![0.0; b], vec![0.0; b], vec![0.0; b]),
            |mut acc, r| {
                let row = &counts[r * b..(r + 1) * b];
                let e = errors[r];
                for (j, &c) in row.iter().enumerate() {
                    if c == target {
                        acc.0[j] += 1.0;
                        acc.1[j] += e;
                        if e > acc.2[j] {
                            acc.2[j] = e;
                        }
                    }
                }
                acc
            },
            |mut a, b| {
                for j in 0..a.0.len() {
                    a.0[j] += b.0[j];
                    a.1[j] += b.1[j];
                    if b.2[j] > a.2[j] {
                        a.2[j] = b.2[j];
                    }
                }
                a
            },
        );
        sizes[start..end].copy_from_slice(&bs);
        errs[start..end].copy_from_slice(&be);
        max_errs[start..end].copy_from_slice(&bm);
        start = end;
    }
    exec.put_f64(scratch);
    (sizes, errs, max_errs)
}

/// Merges partial `(sizes, errors, max_errors)` statistics in iterator
/// order: the first partial becomes the accumulator, every later one is
/// added element-wise (`max` for max-errors) and its buffers are returned
/// to the context pool. Returns `None` for an empty iterator.
///
/// This is **the** exchange seam of the workspace — the multi-thread
/// fused kernel, the simulated cluster's aggregate step, and the
/// out-of-core chunk driver all combine partials through this exact
/// loop, so any path that splits rows into ascending ranges (threads,
/// partitions, or chunks) produces bit-identical statistics.
pub fn merge_stat_partials<I>(
    partials: I,
    exec: &ExecContext,
) -> Option<(Vec<f64>, Vec<f64>, Vec<f64>)>
where
    I: IntoIterator<Item = (Vec<f64>, Vec<f64>, Vec<f64>)>,
{
    let mut partials = partials.into_iter();
    let (mut sizes, mut errs, mut max_errs) = partials.next()?;
    let k = sizes.len();
    for (ps, pe, pm) in partials {
        for j in 0..k {
            sizes[j] += ps[j];
            errs[j] += pe[j];
            if pm[j] > max_errs[j] {
                max_errs[j] = pm[j];
            }
        }
        exec.put_f64(ps);
        exec.put_f64(pe);
        exec.put_f64(pm);
    }
    Some((sizes, errs, max_errs))
}

/// Fused evaluation: one scan of `X`, per-slice accumulators, no
/// materialized intermediate. Worker-local accumulators are checked out
/// of the context pool and returned after the merge.
fn eval_fused(
    x: &CsrMatrix,
    errors: &[f64],
    slices: &[Vec<u32>],
    level: usize,
    exec: &ExecContext,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let k = slices.len();
    let _span = exec
        .tracer()
        .span("fused.eval", "linalg")
        .arg("slices", k)
        .arg("level", level);
    // Inverted index: projected column -> slice ids containing it.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); x.cols()];
    for (sid, cols) in slices.iter().enumerate() {
        for &c in cols {
            inv[c as usize].push(sid as u32);
        }
    }
    let inv = &inv;
    let target = level as u32;
    let ranges = exec.parallel().split_range(x.rows());
    let partials: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let mut sizes = exec.take_f64(k);
                    let mut errs = exec.take_f64(k);
                    let mut max_errs = exec.take_f64(k);
                    let mut counts = exec.take_u32(k);
                    let mut touched = exec.take_u32(0);
                    #[allow(clippy::needless_range_loop)]
                    for r in lo..hi {
                        let e = errors[r];
                        for &c in x.row_cols(r) {
                            for &sid in &inv[c as usize] {
                                if counts[sid as usize] == 0 {
                                    touched.push(sid);
                                }
                                counts[sid as usize] += 1;
                            }
                        }
                        for &sid in &touched {
                            let sid = sid as usize;
                            if counts[sid] == target {
                                sizes[sid] += 1.0;
                                errs[sid] += e;
                                if e > max_errs[sid] {
                                    max_errs[sid] = e;
                                }
                            }
                            counts[sid] = 0;
                        }
                        touched.clear();
                    }
                    exec.put_u32(counts);
                    exec.put_u32(touched);
                    (sizes, errs, max_errs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // The first partial becomes the accumulator; the rest merge into it
    // and their buffers go back to the pool.
    merge_stat_partials(partials, exec).expect("split_range yields at least one range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-checkable fixture: 6 rows, 4 projected columns
    /// (f0∈{c0,c1}, f1∈{c2,c3}).
    fn fixture() -> (CsrMatrix, Vec<f64>) {
        let rows = vec![
            vec![0, 2], // e=1.0
            vec![0, 3], // e=0.5
            vec![1, 2], // e=0.0
            vec![0, 2], // e=2.0
            vec![1, 3], // e=0.0
            vec![0, 3], // e=0.0
        ];
        let x = CsrMatrix::from_binary_rows(4, &rows).unwrap();
        (x, vec![1.0, 0.5, 0.0, 2.0, 0.0, 0.0])
    }

    fn ctx(errors: &[f64]) -> ScoringContext {
        ScoringContext::new(errors, 0.95)
    }

    #[test]
    fn evaluates_pair_slices_correctly() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 3]];
        let out = evaluate_slices(
            &x,
            &e,
            slices,
            2,
            &c,
            EvalKernel::Blocked { block_size: 2 },
            &ExecContext::serial(),
        );
        // Slice {c0,c2}: rows 0 and 3 -> size 2, err 3.0, max 2.0.
        assert_eq!(out.sizes, vec![2.0, 2.0, 1.0]);
        assert_eq!(out.errors, vec![3.0, 0.5, 0.0]);
        assert_eq!(out.max_errors, vec![2.0, 0.5, 0.0]);
        assert_eq!(out.scores[0], c.score(2.0, 3.0));
    }

    #[test]
    fn blocked_and_fused_agree() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let exec = ExecContext::serial();
        let blocked = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Blocked { block_size: 3 },
            &exec,
        );
        let fused = evaluate_slices(&x, &e, slices, 2, &c, EvalKernel::Fused, &exec);
        assert_eq!(blocked.sizes, fused.sizes);
        assert_eq!(blocked.errors, fused.errors);
        assert_eq!(blocked.max_errors, fused.max_errors);
    }

    #[test]
    fn parallel_matches_serial() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = [vec![0], vec![1], vec![2], vec![3], vec![0, 2]];
        // Mixed levels are not allowed; use level-1 slices only.
        let l1: Vec<Vec<u32>> = slices[..4].to_vec();
        let serial = evaluate_slices(
            &x,
            &e,
            l1.clone(),
            1,
            &c,
            EvalKernel::Blocked { block_size: 16 },
            &ExecContext::serial(),
        );
        for threads in [2, 4] {
            for kernel in [EvalKernel::Blocked { block_size: 2 }, EvalKernel::Fused] {
                let par = evaluate_slices(
                    &x,
                    &e,
                    l1.clone(),
                    1,
                    &c,
                    kernel,
                    &ExecContext::new(threads),
                );
                assert_eq!(par.sizes, serial.sizes);
                assert_eq!(par.errors, serial.errors);
                assert_eq!(par.max_errors, serial.max_errors);
            }
        }
    }

    #[test]
    fn empty_slice_set() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let out = evaluate_slices(
            &x,
            &e,
            Vec::new(),
            2,
            &c,
            EvalKernel::default(),
            &ExecContext::serial(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn slice_matching_no_rows_scores_neg_inf() {
        let (x, e) = fixture();
        let c = ctx(&e);
        // {c1, c3} appears... rows 4 matches {1,3}; use {c1,c2} rows: row 2
        // matches. Construct an impossible combination within one feature:
        // {c0, c1} can never match (both values of feature 0).
        let out = evaluate_slices(
            &x,
            &e,
            vec![vec![0, 1]],
            2,
            &c,
            EvalKernel::default(),
            &ExecContext::serial(),
        );
        assert_eq!(out.sizes, vec![0.0]);
        assert_eq!(out.scores[0], f64::NEG_INFINITY);
    }

    #[test]
    fn auto_kernel_matches_both_plans() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let expect = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Fused,
            &ExecContext::serial(),
        );
        // Below the threshold: blocked plan; above: fused. Same numbers.
        for fused_above in [1usize, 100] {
            let out = evaluate_slices(
                &x,
                &e,
                slices.clone(),
                2,
                &c,
                EvalKernel::Auto {
                    block_size: 2,
                    fused_above,
                },
                &ExecContext::serial(),
            );
            assert_eq!(out.sizes, expect.sizes, "fused_above={fused_above}");
            assert_eq!(out.errors, expect.errors);
        }
    }

    #[test]
    fn block_size_one_is_task_parallel() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![1, 2]];
        let b1 = evaluate_slices(
            &x,
            &e,
            slices.clone(),
            2,
            &c,
            EvalKernel::Blocked { block_size: 1 },
            &ExecContext::serial(),
        );
        let b16 = evaluate_slices(
            &x,
            &e,
            slices,
            2,
            &c,
            EvalKernel::Blocked { block_size: 16 },
            &ExecContext::serial(),
        );
        assert_eq!(b1.sizes, b16.sizes);
        assert_eq!(b1.errors, b16.errors);
    }

    #[test]
    fn pooled_buffers_do_not_leak_state_between_calls() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        // Poison the pool with dirty buffers of assorted sizes; results
        // must match a context that never pools.
        let exec = ExecContext::new(2);
        exec.put_f64(vec![123.0; 7]);
        exec.put_f64(vec![-4.0; 100]);
        exec.put_u32(vec![9; 3]);
        exec.put_u64(vec![u64::MAX; 5]);
        let fresh = ExecContext::new(2);
        fresh.set_pooling(false);
        for kernel in [
            EvalKernel::Blocked { block_size: 2 },
            EvalKernel::Fused,
            EvalKernel::Bitmap,
        ] {
            for _ in 0..3 {
                let pooled = evaluate_slices(&x, &e, slices.clone(), 2, &c, kernel, &exec);
                let plain = evaluate_slices(&x, &e, slices.clone(), 2, &c, kernel, &fresh);
                assert_eq!(pooled.sizes, plain.sizes);
                assert_eq!(pooled.errors, plain.errors);
                assert_eq!(pooled.max_errors, plain.max_errors);
                assert_eq!(pooled.scores, plain.scores);
            }
        }
        assert!(exec.pool_stats().reused() > 0);
    }

    #[test]
    fn bitmap_kernel_matches_fused() {
        let (x, e) = fixture();
        let c = ctx(&e);
        for (slices, level) in [
            (vec![vec![0u32], vec![1], vec![2], vec![3]], 1),
            (vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![0, 1]], 2),
        ] {
            let exec = ExecContext::serial();
            let fused =
                evaluate_slices(&x, &e, slices.clone(), level, &c, EvalKernel::Fused, &exec);
            for threads in [1, 2, 4] {
                let bm = evaluate_slices(
                    &x,
                    &e,
                    slices.clone(),
                    level,
                    &c,
                    EvalKernel::Bitmap,
                    &ExecContext::new(threads),
                );
                assert_eq!(bm.sizes, fused.sizes, "level={level} threads={threads}");
                assert_eq!(bm.errors, fused.errors);
                assert_eq!(bm.max_errors, fused.max_errors);
                assert_eq!(bm.scores, fused.scores);
            }
        }
    }

    #[test]
    fn bitmap_engine_reuses_parents_across_levels() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let exec = ExecContext::serial();
        exec.enable_stats(true);
        let l2 = vec![vec![0u32, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let l3 = vec![vec![0u32, 2, 3], vec![0, 1, 2]];
        // A budget-0 engine must agree with a cached engine: the cache
        // changes work, never results.
        for budget in [0usize, 1 << 20] {
            let mut engine = EvalEngine::new(budget);
            exec.begin_level(2);
            let lvl2 = evaluate_slices_with(
                &x,
                &e,
                l2.clone(),
                2,
                &c,
                EvalKernel::Bitmap,
                &exec,
                &mut engine,
            );
            exec.begin_level(3);
            let lvl3 = evaluate_slices_with(
                &x,
                &e,
                l3.clone(),
                3,
                &c,
                EvalKernel::Bitmap,
                &exec,
                &mut engine,
            );
            let expect2 = evaluate_slices(&x, &e, l2.clone(), 2, &c, EvalKernel::Fused, &exec);
            let expect3 = evaluate_slices(&x, &e, l3.clone(), 3, &c, EvalKernel::Fused, &exec);
            assert_eq!(lvl2.sizes, expect2.sizes, "budget={budget}");
            assert_eq!(lvl2.errors, expect2.errors);
            assert_eq!(lvl3.sizes, expect3.sizes, "budget={budget}");
            assert_eq!(lvl3.errors, expect3.errors);
            assert_eq!(lvl3.max_errors, expect3.max_errors);
            // Every level-3 candidate has a cached level-2 parent when the
            // budget allows; none can hit with the cache disabled.
            let hits: u64 = exec.exec_stats().levels.iter().map(|p| p.cache_hits).sum();
            if budget == 0 {
                assert_eq!(hits, 0);
            } else {
                assert_eq!(hits, l3.len() as u64);
            }
            exec.reset_stats();
        }
    }

    #[test]
    fn auto_prefers_bitmap_above_threshold() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let exec = ExecContext::serial();
        exec.enable_stats(true);
        exec.begin_level(2);
        let slices = vec![vec![0u32, 2], vec![0, 3], vec![1, 2]];
        evaluate_slices(
            &x,
            &e,
            slices,
            2,
            &c,
            EvalKernel::Auto {
                block_size: 16,
                fused_above: 2,
            },
            &exec,
        );
        let stats = exec.exec_stats();
        assert_eq!(stats.levels[0].kernel, Some("bitmap"));
    }

    #[test]
    fn bitmap_stats_match_fused_stats() {
        let (x, e) = fixture();
        let slices = vec![vec![0u32, 2], vec![0, 3], vec![1, 3]];
        let exec = ExecContext::serial();
        let fused = evaluate_slice_stats(&x, &e, &slices, 2, &exec);
        let bits = BitMatrix::from_csr(&x);
        let bm = evaluate_slice_stats_bitmap(&bits, &e, &slices, &exec);
        assert_eq!(bm, fused);
        let empty = evaluate_slice_stats_bitmap(&bits, &e, &[], &exec);
        assert!(empty.0.is_empty() && empty.1.is_empty() && empty.2.is_empty());
    }

    #[test]
    fn engine_coverage_and_compact_match_fresh_state() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let exec = ExecContext::serial();
        let mut engine = EvalEngine::default();
        // No bitmap state yet -> no coverage.
        assert!(engine.coverage(&x, std::iter::empty(), &exec).is_none());
        let l2 = vec![vec![0u32, 2], vec![0, 3]];
        let lvl2 = evaluate_slices_with(
            &x,
            &e,
            l2.clone(),
            2,
            &c,
            EvalKernel::Bitmap,
            &exec,
            &mut engine,
        );
        assert_eq!(lvl2.sizes, vec![2.0, 2.0]);
        // Coverage of both slices: rows {0, 3} ∪ {1, 5}.
        let cov = engine
            .coverage(&x, l2.iter().map(|s| s.as_slice()), &exec)
            .unwrap();
        assert_eq!(cov, vec![0b101011]);
        // Compact to those four rows, keeping all columns.
        let keep = cov.clone();
        let xc = x
            .select_rows_cols(&[0, 1, 3, 5], &[0, 1, 2, 3], &exec)
            .unwrap();
        let ec = vec![e[0], e[1], e[3], e[5]];
        engine.compact((6, 4), &keep, 4, &[0, 1, 2, 3], &[0, 1, 2, 3], &exec);
        // Level-3 children evaluated through the compacted engine agree
        // with a throwaway engine on the compacted matrix, and the
        // re-packed parents still serve cache hits.
        let stats_exec = ExecContext::serial();
        stats_exec.enable_stats(true);
        stats_exec.begin_level(3);
        let l3 = vec![vec![0u32, 2, 3]];
        let got = evaluate_slices_with(
            &xc,
            &ec,
            l3.clone(),
            3,
            &c,
            EvalKernel::Bitmap,
            &stats_exec,
            &mut engine,
        );
        let expect = evaluate_slices(&xc, &ec, l3, 3, &c, EvalKernel::Fused, &exec);
        assert_eq!(got.sizes, expect.sizes);
        assert_eq!(got.errors, expect.errors);
        assert_eq!(stats_exec.exec_stats().levels[0].cache_hits, 1);
    }

    #[test]
    fn engine_compact_drops_stale_geometry() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let exec = ExecContext::serial();
        let mut engine = EvalEngine::default();
        let _ = evaluate_slices_with(
            &x,
            &e,
            vec![vec![0u32, 2]],
            2,
            &c,
            EvalKernel::Bitmap,
            &exec,
            &mut engine,
        );
        // Claimed old shape disagrees with the engine's state: the state
        // must be dropped, not gathered into a mixed index space.
        engine.compact((5, 4), &[0b1u64], 1, &[0], &[0], &exec);
        assert!(engine.coverage(&x, std::iter::empty(), &exec).is_none());
    }

    #[test]
    fn stats_kernel_matches_evaluate_slices() {
        let (x, e) = fixture();
        let c = ctx(&e);
        let slices = vec![vec![0, 2], vec![0, 3], vec![1, 3]];
        let exec = ExecContext::serial();
        let (sizes, errs, max_errs) = evaluate_slice_stats(&x, &e, &slices, 2, &exec);
        let full = evaluate_slices(&x, &e, slices, 2, &c, EvalKernel::Fused, &exec);
        assert_eq!(sizes, full.sizes);
        assert_eq!(errs, full.errors);
        assert_eq!(max_errs, full.max_errors);
        let empty = evaluate_slice_stats(&x, &e, &[], 2, &exec);
        assert!(empty.0.is_empty() && empty.1.is_empty() && empty.2.is_empty());
    }
}
