//! Error types for the SliceLine core.

use std::fmt;

/// Convenience alias for SliceLine results.
pub type Result<T> = std::result::Result<T, SliceLineError>;

/// Errors produced while configuring or running SliceLine.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceLineError {
    /// Invalid configuration (e.g. `alpha` outside `(0, 1]`).
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Input matrix and error vector disagree on the number of rows, or an
    /// error value is negative/non-finite.
    InvalidInput {
        /// Human-readable description.
        reason: String,
    },
    /// A lower-level linear algebra operation failed; indicates a bug in
    /// the enumeration logic rather than bad user input.
    Internal {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for SliceLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceLineError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SliceLineError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            SliceLineError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for SliceLineError {}

impl From<sliceline_linalg::LinalgError> for SliceLineError {
    fn from(e: sliceline_linalg::LinalgError) -> Self {
        SliceLineError::Internal {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SliceLineError::InvalidConfig { reason: "x".into() }
            .to_string()
            .contains("invalid config"));
        assert!(SliceLineError::InvalidInput { reason: "y".into() }
            .to_string()
            .contains("invalid input"));
        assert!(SliceLineError::Internal { reason: "z".into() }
            .to_string()
            .contains("internal"));
    }

    #[test]
    fn from_linalg() {
        let le = sliceline_linalg::LinalgError::EmptyInput { op: "max" };
        let se: SliceLineError = le.into();
        assert!(matches!(se, SliceLineError::Internal { .. }));
    }
}
