//! Data preparation (Algorithm 1, lines 1–5): input validation, one-hot
//! encoding, and the feature-offset bookkeeping that maps one-hot columns
//! back to `(feature, value)` predicates.

use crate::config::SliceLineConfig;
use crate::error::{Result, SliceLineError};
use crate::scoring::ScoringContext;
use sliceline_frame::onehot::one_hot_encode;
use sliceline_frame::IntMatrix;
use sliceline_linalg::{CsrMatrix, ExecContext};

/// Validated, one-hot encoded input ready for enumeration.
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// One-hot encoded feature matrix `X` (`n × l`).
    pub x: CsrMatrix,
    /// Row-aligned non-negative errors `e`.
    pub errors: Vec<f64>,
    /// Dataset-level scoring quantities.
    pub ctx: ScoringContext,
    /// Resolved minimum support `σ`.
    pub sigma: usize,
    /// Number of original features `m`.
    pub m: usize,
    /// For each one-hot column: the owning original feature (0-based).
    pub col_feature: Vec<u32>,
    /// For each one-hot column: the 1-based value code within its feature.
    pub col_code: Vec<u32>,
}

impl PreparedData {
    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of one-hot columns `l`.
    pub fn l(&self) -> usize {
        self.x.cols()
    }
}

/// Validates inputs and performs the one-hot data preparation.
///
/// The error vector is copied into a scratch buffer checked out of `exec`'s
/// pool, so repeated runs on the same context reuse the allocation.
pub fn prepare(
    x0: &IntMatrix,
    errors: &[f64],
    config: &SliceLineConfig,
    exec: &ExecContext,
) -> Result<PreparedData> {
    config.validate()?;
    let n = x0.rows();
    if n == 0 || x0.cols() == 0 {
        return Err(SliceLineError::InvalidInput {
            reason: format!("empty input: {}x{}", n, x0.cols()),
        });
    }
    if errors.len() != n {
        return Err(SliceLineError::InvalidInput {
            reason: format!("X0 has {n} rows but e has {}", errors.len()),
        });
    }
    for (i, &e) in errors.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            return Err(SliceLineError::InvalidInput {
                reason: format!("error at row {i} is {e}; errors must be finite and >= 0"),
            });
        }
    }
    let x = one_hot_encode(x0);
    let mut col_feature = Vec::with_capacity(x.cols());
    let mut col_code = Vec::with_capacity(x.cols());
    for (j, &d) in x0.domains().iter().enumerate() {
        for code in 1..=d {
            col_feature.push(j as u32);
            col_code.push(code);
        }
    }
    let ctx = ScoringContext::new(errors, config.alpha);
    let sigma = config.min_support.resolve(n).max(1);
    let mut err_buf = exec.take_f64(0);
    err_buf.extend_from_slice(errors);
    Ok(PreparedData {
        x,
        errors: err_buf,
        ctx,
        sigma,
        m: x0.cols(),
        col_feature,
        col_code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceLineConfig;

    fn x0() -> IntMatrix {
        IntMatrix::from_rows(&[vec![1, 2], vec![2, 1], vec![1, 3]]).unwrap()
    }

    fn cfg() -> SliceLineConfig {
        SliceLineConfig::builder().min_support(1).build().unwrap()
    }

    #[test]
    fn prepares_valid_input() {
        let p = prepare(&x0(), &[0.5, 0.0, 1.0], &cfg(), &ExecContext::serial()).unwrap();
        assert_eq!(p.n(), 3);
        assert_eq!(p.l(), 5);
        assert_eq!(p.m, 2);
        assert_eq!(p.col_feature, vec![0, 0, 1, 1, 1]);
        assert_eq!(p.col_code, vec![1, 2, 1, 2, 3]);
        assert!((p.ctx.avg_error - 0.5).abs() < 1e-12);
        assert_eq!(p.sigma, 1);
    }

    #[test]
    fn rejects_misaligned_errors() {
        assert!(matches!(
            prepare(&x0(), &[0.5, 0.0], &cfg(), &ExecContext::serial()),
            Err(SliceLineError::InvalidInput { .. })
        ));
    }

    #[test]
    fn rejects_negative_or_nonfinite_errors() {
        assert!(prepare(&x0(), &[0.5, -0.1, 0.0], &cfg(), &ExecContext::serial()).is_err());
        assert!(prepare(&x0(), &[0.5, f64::NAN, 0.0], &cfg(), &ExecContext::serial()).is_err());
        assert!(prepare(
            &x0(),
            &[0.5, f64::INFINITY, 0.0],
            &cfg(),
            &ExecContext::serial()
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let empty = IntMatrix::from_data(0, 0, vec![]).unwrap();
        assert!(prepare(&empty, &[], &cfg(), &ExecContext::serial()).is_err());
    }

    #[test]
    fn sigma_resolved_from_n() {
        let c = SliceLineConfig::builder()
            .min_support_fraction(0.5)
            .build()
            .unwrap();
        let p = prepare(&x0(), &[1.0, 1.0, 1.0], &c, &ExecContext::serial()).unwrap();
        assert_eq!(p.sigma, 2); // ceil(3 * 0.5)
    }

    #[test]
    fn invalid_config_propagates() {
        let mut c = cfg();
        c.alpha = 2.0;
        assert!(matches!(
            prepare(&x0(), &[1.0, 1.0, 1.0], &c, &ExecContext::serial()),
            Err(SliceLineError::InvalidConfig { .. })
        ));
    }
}
