//! Anytime best-first slice enumeration — the paper's §7 future-work
//! direction ("priority-based enumeration, e.g., based on errors or
//! classes"), grown into a production engine.
//!
//! Instead of expanding the lattice level by level, candidates are kept
//! in a max-heap ordered by their score upper bound (Eq. 3) and expanded
//! in **batches**: each round pops the top-`B` bound-ordered nodes and
//! evaluates their children in parallel across the [`ExecContext`]
//! thread pool. Row sets are packed `u64` bitmaps served by the shared
//! [`EvalEngine`] pack (a child is its parent's bitmap `AND` one new
//! predicate column), sibling groups go through the interleaved
//! [`bitmap::masked_stats_and2_multi`] kernel, and child bitmaps are only
//! materialized when the child's own bound can still beat the current
//! top-K threshold — so best-first search runs on the same bitmap + SIMD
//! machinery as the level-wise path instead of scalar row intersection.
//!
//! **Budgets.** The search is *anytime*: it honors a wall-clock deadline
//! ([`SliceLineConfig::budget_ms`], checked between rounds), a
//! candidate-count cap ([`SliceLineConfig::max_evals`]) and a byte cap on
//! materialized frontier bitmaps ([`SliceLineConfig::frontier_bytes`]).
//! On any early stop it returns the best top-K found so far **plus a
//! certified optimality gap**: `gap = max(0, best_unexplored_bound −
//! max(sc_k, 0))`. Every unexplored slice is a descendant of a frontier
//! node (or of a capacity-dropped child, whose bound is folded into the
//! certificate), and the Eq. 3 bound dominates all descendant scores, so
//! no slice outside the returned top-K can score above `kth + gap`. The
//! gap is zero iff the result is exact.
//!
//! Exactness argument (unlimited budget): each slice is generated exactly
//! once by *prefix extension* (appending a predicate column greater than
//! its largest), and a node's Eq. 3 bound — computed from its own
//! evaluated statistics — dominates the score of **every** superset,
//! prefix descendants included. A node is only discarded when that bound
//! cannot beat the monotone top-K threshold, so the returned top-K equals
//! the level-wise algorithm's (property-tested per-rank on score bits).
//! The trade-off versus Algorithm 1 is bound tightness: best-first sees
//! one parent per node where the level-wise join minimizes over all `L`
//! parents.

use crate::algorithm::{count_valid, decode_topk, emit_funnel, SliceLineResult};
use crate::config::SliceLineConfig;
use crate::error::Result;
use crate::evaluate::EvalEngine;
use crate::init::{create_and_score_basic_slices, LevelState, ProjectedData};
use crate::prepare::prepare;
use crate::scoring::ScoringContext;
use crate::stats::{AnytimeStats, LevelStats, RunStats};
use crate::topk::TopK;
use sliceline_linalg::bitmap::{self, MULTI_WAY};
use sliceline_linalg::{ExecContext, LevelProfile, Stage};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// A frontier entry: a not-yet-expanded slice with its Eq. 3 bound.
#[derive(Debug)]
struct Node {
    /// Upper bound on any descendant's score.
    bound: f64,
    /// Sorted projected column ids.
    cols: Vec<u32>,
    /// Packed row bitmap of the slice. `None` for single-predicate seeds,
    /// whose bitmap is their column in the engine's shared pack.
    bits: Option<Vec<u64>>,
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound via `total_cmp` (a NaN bound orders above
        // +inf instead of poisoning comparisons); ties broken by fewer
        // predicates then lexicographic cols so the order is total and
        // deterministic across runs and thread counts.
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.cols.len().cmp(&self.cols.len()))
            .then_with(|| other.cols.cmp(&self.cols))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}

/// One evaluated child produced by a node expansion.
struct Child {
    /// The appended projected column.
    col: u32,
    size: f64,
    error: f64,
    max_error: f64,
    score: f64,
    /// Eq. 3 bound over the child's descendants.
    bound: f64,
    /// Materialized bitmap, present only when the bound beat the
    /// round-start threshold and the child can still be expanded.
    bits: Option<Vec<u64>>,
}

/// Result of expanding one frontier node.
struct Expansion {
    children: Vec<Child>,
    /// Candidate columns whose statistics were computed (the unit the
    /// `max_evals` cap counts).
    considered: usize,
}

/// Outcome of a best-first run.
#[derive(Debug, Clone)]
pub struct PriorityResult {
    /// The (possibly anytime) top-K slices and run statistics
    /// ([`RunStats::anytime`] carries the full budget outcome).
    pub result: SliceLineResult,
    /// Slices evaluated (basic slices + frontier children).
    pub evaluated: usize,
    /// `true` when the search ran to completion — the top-K is then exact.
    /// `false` when a budget stopped it first.
    pub exact: bool,
    /// Certified optimality gap: no slice outside the returned top-K can
    /// score more than `max(sc_k, 0) + gap`. Zero iff [`Self::exact`].
    pub gap: f64,
}

/// Best-first SliceLine with deadline / candidate / memory budgets.
///
/// ```
/// use sliceline::priority::PrioritySliceLine;
/// use sliceline::SliceLineConfig;
/// use sliceline_frame::IntMatrix;
///
/// let x0 = IntMatrix::from_rows(&[
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
/// ]).unwrap();
/// let errors = vec![1.0, 0.1, 0.1, 0.1, 1.0, 0.1, 0.1, 0.1];
/// let config = SliceLineConfig::builder().k(1).min_support(2).build().unwrap();
/// let out = PrioritySliceLine::new(config).find_slices(&x0, &errors).unwrap();
/// assert!(out.exact);
/// assert_eq!(out.gap, 0.0);
/// assert_eq!(out.result.top_k[0].predicates, vec![(0, 1), (1, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct PrioritySliceLine {
    config: SliceLineConfig,
}

impl PrioritySliceLine {
    /// Creates a best-first searcher; budgets come from the
    /// configuration (`budget_ms` / `max_evals` / `frontier_bytes`, all
    /// unlimited by default — the search is then exhaustive and exact).
    pub fn new(config: SliceLineConfig) -> Self {
        PrioritySliceLine { config }
    }

    /// Creates an anytime searcher stopping after `budget` candidate
    /// evaluations (shorthand for setting
    /// [`SliceLineConfig::max_evals`]).
    pub fn with_budget(mut config: SliceLineConfig, budget: usize) -> Self {
        config.max_evals = budget.max(1);
        PrioritySliceLine { config }
    }

    /// Runs the best-first search on a fresh execution context built
    /// from the configuration.
    pub fn find_slices(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
    ) -> Result<PriorityResult> {
        let exec = self.config.exec_context();
        self.find_slices_in(x0, errors, &exec)
    }

    /// Runs the best-first search on a caller-provided execution context
    /// — mirroring [`crate::SliceLine::find_slices_in`] — so budgeted /
    /// anytime queries can share a resident session's pooled context
    /// ([`crate::session::DatasetSession::exec`]) instead of allocating
    /// their own scratch buffers per call.
    pub fn find_slices_in(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
        exec: &ExecContext,
    ) -> Result<PriorityResult> {
        // Per-run telemetry scope with the configured SIMD level, exactly
        // like the level-wise path.
        let scope = exec.with_simd(self.config.simd).run_scoped();
        let exec = &scope;
        let start = Instant::now();
        let mut run_span = exec.tracer().span("priority.find_slices", "core");
        let prepared = {
            let _prep_span = exec.tracer().span("prepare", "core");
            prepare(x0, errors, &self.config, exec)?
        };
        exec.add_prepare(start.elapsed());
        run_span.add_arg("n", prepared.n());
        run_span.add_arg("m", prepared.m);
        run_span.add_arg("l", prepared.l());
        let mut stats = RunStats {
            sigma: prepared.sigma,
            n: prepared.n(),
            m: prepared.m,
            l: prepared.l(),
            ..Default::default()
        };
        let (proj, basic) = create_and_score_basic_slices(&prepared, exec);
        stats.basic_slices = basic.len();
        let max_level = self.config.max_level.min(prepared.m);
        let mut engine = EvalEngine::new(self.config.bitmap_cache_bytes);
        let run = FrontierRun {
            config: &self.config,
            ctx: prepared.ctx,
            sigma: prepared.sigma,
            max_level,
            start,
        };
        let (topk, anytime, levels) =
            run_frontier(run, &proj, &basic, &prepared.errors, &mut engine, exec);
        stats.levels = levels;
        stats.total_elapsed = start.elapsed();
        stats.exec = exec.stats_enabled().then(|| exec.exec_stats());
        let top_k = decode_topk(&topk, &proj);
        let (evaluated, exact, gap) = (anytime.evaluated, anytime.exact, anytime.gap);
        stats.anytime = Some(anytime);
        Ok(PriorityResult {
            result: SliceLineResult { top_k, stats },
            evaluated,
            exact,
            gap,
        })
    }

    /// The retired serial reference implementation: one node popped at a
    /// time, row sets as sorted `Vec<u32>` intersections, no bitmaps, no
    /// parallelism. Kept verbatim as the baseline the batched-bitmap
    /// frontier is benchmarked against (`anytime_bench` gates a ≥3x win)
    /// and as an independent oracle for differential tests. Honors only
    /// the `max_evals` budget.
    pub fn find_slices_serial(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
    ) -> Result<PriorityResult> {
        let exec = self.config.exec_context();
        let start = Instant::now();
        let prepared = prepare(x0, errors, &self.config, &exec)?;
        let mut stats = RunStats {
            sigma: prepared.sigma,
            n: prepared.n(),
            m: prepared.m,
            l: prepared.l(),
            ..Default::default()
        };
        let (proj, basic) = create_and_score_basic_slices(&prepared, &exec);
        stats.basic_slices = basic.len();
        let sigma = prepared.sigma;
        let max_level = self.config.max_level.min(prepared.m);
        let budget = if self.config.max_evals > 0 {
            self.config.max_evals
        } else {
            usize::MAX
        };
        let mut topk = TopK::new(self.config.k, sigma);
        topk.update(&basic);
        let xt = proj.x.transpose();
        let num_cols = proj.x.cols();
        // The serial reference keeps its materialized row set inside the
        // node, as the original implementation did.
        struct SerialNode {
            bound: f64,
            cols: Vec<u32>,
            rows: Vec<u32>,
        }
        impl Ord for SerialNode {
            fn cmp(&self, other: &Self) -> Ordering {
                self.bound
                    .total_cmp(&other.bound)
                    .then_with(|| other.cols.len().cmp(&self.cols.len()))
                    .then_with(|| other.cols.cmp(&self.cols))
            }
        }
        impl PartialOrd for SerialNode {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl PartialEq for SerialNode {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == Ordering::Equal
            }
        }
        impl Eq for SerialNode {}
        let mut heap: BinaryHeap<SerialNode> = BinaryHeap::new();
        for i in 0..basic.len() {
            let c = basic.slices[i][0];
            let bound = prepared.ctx.score_upper_bound(
                basic.sizes[i],
                basic.errors[i],
                basic.max_errors[i],
                sigma,
            );
            if bound > topk.prune_threshold() {
                heap.push(SerialNode {
                    bound,
                    cols: vec![c],
                    rows: xt.row_cols(c as usize).to_vec(),
                });
            }
        }
        let mut evaluated = basic.len();
        let mut expansions = 0usize;
        let mut exact = true;
        let mut gap = 0.0f64;
        while let Some(node) = heap.pop() {
            if node.bound <= topk.prune_threshold() {
                break;
            }
            if node.cols.len() >= max_level {
                continue;
            }
            if evaluated >= budget {
                exact = false;
                gap = (node.bound - topk.prune_threshold()).max(0.0);
                break;
            }
            expansions += 1;
            let last_col = *node.cols.last().expect("nodes are non-empty") as usize;
            let used_feature = proj.col_feature[last_col];
            for next in (last_col + 1)..num_cols {
                if proj.col_feature[next] == used_feature
                    || node
                        .cols
                        .iter()
                        .any(|&c| proj.col_feature[c as usize] == proj.col_feature[next])
                {
                    continue;
                }
                let child_rows = intersect_sorted(&node.rows, xt.row_cols(next));
                if (child_rows.len() < sigma && self.config.pruning.size_pruning)
                    || child_rows.is_empty()
                {
                    continue;
                }
                evaluated += 1;
                let mut error = 0.0;
                let mut max_error: f64 = 0.0;
                for &r in &child_rows {
                    let e = prepared.errors[r as usize];
                    error += e;
                    max_error = max_error.max(e);
                }
                if error <= 0.0 {
                    continue;
                }
                let size = child_rows.len() as f64;
                let mut cols = node.cols.clone();
                cols.push(next as u32);
                let score = prepared.ctx.score(size, error);
                topk.update(&singleton_level(&cols, size, error, max_error, score));
                let bound = prepared
                    .ctx
                    .score_upper_bound(size, error, max_error, sigma);
                if bound > topk.prune_threshold() && cols.len() < max_level {
                    heap.push(SerialNode {
                        bound,
                        cols,
                        rows: child_rows,
                    });
                }
            }
        }
        stats.levels.push(LevelStats {
            level: max_level.min(prepared.m),
            candidates: evaluated,
            valid: expansions,
            enumeration: None,
            elapsed: start.elapsed(),
            threshold_after: topk.prune_threshold(),
            ..Default::default()
        });
        stats.total_elapsed = start.elapsed();
        stats.anytime = Some(AnytimeStats {
            exact,
            gap,
            evaluated,
            expanded: expansions,
            batches: expansions,
            frontier_peak: 0,
            frontier_final: heap.len(),
            deadline_hit: false,
            dropped: 0,
        });
        let top_k = decode_topk(&topk, &proj);
        Ok(PriorityResult {
            result: SliceLineResult { top_k, stats },
            evaluated,
            exact,
            gap,
        })
    }
}

/// Scalar parameters of a frontier search (the data lives in the
/// caller's `proj` / `basic` / `errors`).
pub(crate) struct FrontierRun<'a> {
    pub config: &'a SliceLineConfig,
    pub ctx: ScoringContext,
    /// Resolved minimum support σ.
    pub sigma: usize,
    /// Maximum slice depth, already clamped to `m`.
    pub max_level: usize,
    /// Run start, from which the `budget_ms` deadline is measured.
    pub start: Instant,
}

/// The batched best-first engine shared by [`PrioritySliceLine`] and the
/// resident-session priority path
/// ([`crate::session::DatasetSession::query_priority`]). Returns the
/// final top-K, the anytime telemetry and the per-level stats entries.
pub(crate) fn run_frontier(
    run: FrontierRun<'_>,
    proj: &ProjectedData,
    basic: &LevelState,
    errors: &[f64],
    engine: &mut EvalEngine,
    exec: &ExecContext,
) -> (TopK, AnytimeStats, Vec<LevelStats>) {
    let FrontierRun {
        config,
        ctx,
        sigma,
        max_level,
        start,
    } = run;
    let mut levels = Vec::new();
    // Level 1: the basic slices arrive pre-evaluated.
    exec.begin_level(1);
    let level_start = Instant::now();
    let l = proj.x.cols();
    exec.record_level(|p| {
        p.candidates += l as u64;
        p.evaluated += l as u64;
    });
    let mut topk = TopK::new(config.k, sigma);
    let entered = exec.time_stage(Stage::TopK, || topk.update(basic));
    exec.record_level(|p| p.topk_entered += entered as u64);
    emit_funnel(
        exec,
        &LevelProfile {
            level: 1,
            candidates: l as u64,
            evaluated: l as u64,
            topk_entered: entered as u64,
            ..Default::default()
        },
    );
    levels.push(LevelStats {
        level: 1,
        candidates: l,
        valid: count_valid(basic, sigma),
        enumeration: None,
        elapsed: level_start.elapsed(),
        threshold_after: topk.prune_threshold(),
        ..Default::default()
    });
    // Pack (or reuse, on a warm session engine) the column bitmaps.
    let bits = engine.packed_bits(&proj.x, exec);
    let wpc = bits.words_per_col();
    let node_bytes = wpc * 8;
    let num_cols = proj.x.cols();
    let frontier_span = exec.tracer().span("priority.frontier", "core");

    // Seed the frontier with the basic slices that can still produce a
    // better descendant.
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    if max_level > 1 {
        for i in 0..basic.len() {
            let bound =
                ctx.score_upper_bound(basic.sizes[i], basic.errors[i], basic.max_errors[i], sigma);
            if bound > topk.prune_threshold() {
                heap.push(Node {
                    bound,
                    cols: basic.slices[i].clone(),
                    bits: None,
                });
            }
        }
    }

    let deadline = (config.budget_ms > 0).then(|| start + Duration::from_millis(config.budget_ms));
    let eval_cap = if config.max_evals > 0 {
        config.max_evals
    } else {
        usize::MAX
    };
    let frontier_cap = if config.frontier_bytes > 0 {
        config.frontier_bytes
    } else {
        usize::MAX
    };
    let batch_cap = config.priority_batch.max(1);
    let size_pruning = config.pruning.size_pruning;

    let mut evaluated = basic.len();
    let mut considered_children = 0usize;
    let mut valid_children = 0usize;
    let mut expanded = 0usize;
    let mut batches = 0usize;
    let mut frontier_peak = heap.len();
    let mut frontier_bytes = 0usize;
    let mut dropped = 0usize;
    let mut dropped_bound = f64::NEG_INFINITY;
    let mut deadline_hit = false;
    let mut stopped = false;
    let mut deepest = 1usize;
    let mut batch_nodes: Vec<Node> = Vec::with_capacity(batch_cap);
    exec.begin_level(2);
    let frontier_start = Instant::now();

    loop {
        let thr = topk.prune_threshold();
        // A frontier whose best bound cannot beat the threshold is fully
        // pruned — the search is complete (remaining nodes stay in the
        // heap only to be recycled below).
        match heap.peek() {
            None => break,
            // NaN-safe "not strictly greater": a NaN bound must prune,
            // not spin.
            Some(top) if top.bound.partial_cmp(&thr) != Some(std::cmp::Ordering::Greater) => break,
            _ => {}
        }
        // Budgets are checked between rounds, so a run overshoots by at
        // most one batch of evaluations.
        if evaluated >= eval_cap {
            stopped = true;
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stopped = true;
                deadline_hit = true;
                break;
            }
        }
        // Pop the top-B nodes still above the threshold.
        batch_nodes.clear();
        while batch_nodes.len() < batch_cap {
            match heap.peek() {
                Some(top) if top.bound > thr => {
                    let node = heap.pop().expect("peeked");
                    if node.bits.is_some() {
                        frontier_bytes -= node_bytes;
                    }
                    batch_nodes.push(node);
                }
                _ => break,
            }
        }
        batches += 1;
        expanded += batch_nodes.len();
        // Expand the batch in parallel. `par_tasks` preserves index
        // order, and each expansion is deterministic, so the merge below
        // sees the same child sequence at any thread count.
        let nodes = &batch_nodes;
        let expansions: Vec<Expansion> = exec.time_stage(Stage::Evaluate, || {
            exec.parallel().par_tasks(nodes.len(), |i| {
                expand_node(
                    &nodes[i],
                    bits,
                    proj,
                    errors,
                    &ctx,
                    sigma,
                    max_level,
                    thr,
                    size_pruning,
                    num_cols,
                    exec,
                )
            })
        });
        // Deterministic sequential merge: one bulk top-K update over the
        // round's children (same insertion order as per-child updates),
        // then pushes re-checked against the updated threshold.
        let mut round = LevelState::default();
        for (node, expansion) in batch_nodes.iter().zip(expansions.iter()) {
            considered_children += expansion.considered;
            evaluated += expansion.considered;
            for child in &expansion.children {
                let mut cols = node.cols.clone();
                cols.push(child.col);
                deepest = deepest.max(cols.len());
                if child.size >= sigma as f64 && child.error > 0.0 {
                    valid_children += 1;
                }
                round.slices.push(cols);
                round.sizes.push(child.size);
                round.errors.push(child.error);
                round.max_errors.push(child.max_error);
                round.scores.push(child.score);
            }
        }
        let entered = exec.time_stage(Stage::TopK, || topk.update(&round));
        exec.record_level(|p| p.topk_entered += entered as u64);
        let thr_after = topk.prune_threshold();
        let mut pruned_score = 0u64;
        for (node, expansion) in batch_nodes.drain(..).zip(expansions) {
            for child in expansion.children {
                match child.bits {
                    Some(b) if child.bound > thr_after => {
                        if frontier_bytes + node_bytes <= frontier_cap {
                            frontier_bytes += node_bytes;
                            let mut cols = node.cols.clone();
                            cols.push(child.col);
                            heap.push(Node {
                                bound: child.bound,
                                cols,
                                bits: Some(b),
                            });
                        } else {
                            // Capacity drop: fold the bound into the gap
                            // certificate instead of losing it silently.
                            dropped += 1;
                            dropped_bound = dropped_bound.max(child.bound);
                            exec.put_u64(b);
                        }
                    }
                    Some(b) => {
                        pruned_score += 1;
                        exec.put_u64(b);
                    }
                    None => {}
                }
            }
            if let Some(b) = node.bits {
                exec.put_u64(b);
            }
        }
        exec.record_level(|p| p.pruned_score += pruned_score);
        frontier_peak = frontier_peak.max(heap.len());
    }

    // Certificate: the best unexplored bound is the heap's top (nothing
    // was popped after the stop check) joined with any capacity-dropped
    // child bound.
    let thr = topk.prune_threshold();
    let mut best_unexplored = dropped_bound;
    if stopped {
        if let Some(top) = heap.peek() {
            best_unexplored = best_unexplored.max(top.bound);
        }
    }
    let gap = (best_unexplored - thr).max(0.0);
    let exact = !stopped && gap <= 0.0;
    let frontier_final = heap.len();
    // Recycle surviving node bitmaps into the word pool.
    for node in heap.into_vec() {
        if let Some(b) = node.bits {
            exec.put_u64(b);
        }
    }
    for node in batch_nodes {
        if let Some(b) = node.bits {
            exec.put_u64(b);
        }
    }

    exec.record_level(|p| {
        p.level = 2;
        p.candidates += considered_children as u64;
        p.evaluated += considered_children as u64;
        p.kernel = Some("bitmap");
    });
    emit_funnel(
        exec,
        &LevelProfile {
            level: 2,
            candidates: considered_children as u64,
            evaluated: considered_children as u64,
            kernel: Some("bitmap"),
            ..Default::default()
        },
    );
    let anytime = AnytimeStats {
        exact,
        gap,
        evaluated,
        expanded,
        batches,
        frontier_peak,
        frontier_final,
        deadline_hit,
        dropped,
    };
    let metrics = exec.metrics();
    metrics
        .gauge("core.priority.frontier_peak")
        .set(frontier_peak as f64);
    metrics
        .gauge("core.priority.frontier_final")
        .set(frontier_final as f64);
    metrics.gauge("core.priority.batches").set(batches as f64);
    metrics.gauge("core.priority.gap").set(gap);
    metrics
        .counter("core.priority.evaluated")
        .add(considered_children as u64);
    metrics.counter("core.priority.dropped").add(dropped as u64);
    metrics.counter("core.priority.runs").add(1);
    drop(frontier_span);
    if expanded > 0 {
        levels.push(LevelStats {
            level: deepest,
            candidates: considered_children,
            valid: valid_children,
            enumeration: None,
            elapsed: frontier_start.elapsed(),
            threshold_after: thr,
            ..Default::default()
        });
    }
    (topk, anytime, levels)
}

/// Evaluates every prefix-extension child of `node` against the packed
/// column bitmaps: sibling groups of up to [`MULTI_WAY`] columns go
/// through the interleaved fused kernel, and a child's bitmap is
/// materialized (`parent AND column`, SIMD-dispatched) only when its
/// bound beats `thr` — the round-start threshold, a conservative
/// (smaller) stand-in for the post-merge one, so no needed bitmap is
/// ever skipped.
#[allow(clippy::too_many_arguments)]
fn expand_node(
    node: &Node,
    bits: &sliceline_linalg::BitMatrix,
    proj: &ProjectedData,
    errors: &[f64],
    ctx: &ScoringContext,
    sigma: usize,
    max_level: usize,
    thr: f64,
    size_pruning: bool,
    num_cols: usize,
    exec: &ExecContext,
) -> Expansion {
    if node.cols.len() >= max_level {
        return Expansion {
            children: Vec::new(),
            considered: 0,
        };
    }
    let parent: &[u64] = match &node.bits {
        Some(b) => b,
        None => bits.col(node.cols[0] as usize),
    };
    let last_col = *node.cols.last().expect("nodes are non-empty") as usize;
    // Prefix extension: append a strictly larger column of an unused
    // feature, so every slice is generated exactly once.
    let cand: Vec<u32> = ((last_col + 1)..num_cols)
        .filter(|&next| {
            !node
                .cols
                .iter()
                .any(|&c| proj.col_feature[c as usize] == proj.col_feature[next])
        })
        .map(|next| next as u32)
        .collect();
    let depth_ok = node.cols.len() + 1 < max_level;
    let mut children = Vec::new();
    let mut stats_buf = [(0.0f64, 0.0f64, 0.0f64); MULTI_WAY];
    let mut col_refs: Vec<&[u64]> = Vec::with_capacity(MULTI_WAY);
    for chunk in cand.chunks(MULTI_WAY) {
        col_refs.clear();
        col_refs.extend(chunk.iter().map(|&c| bits.col(c as usize)));
        let out = &mut stats_buf[..chunk.len()];
        bitmap::masked_stats_and2_multi(parent, &col_refs, errors, out);
        for (j, &col) in chunk.iter().enumerate() {
            let (size, error, max_error) = out[j];
            if size <= 0.0 || (size < sigma as f64 && size_pruning) || error <= 0.0 {
                continue;
            }
            let score = ctx.score(size, error);
            let bound = ctx.score_upper_bound(size, error, max_error, sigma);
            let child_bits = if depth_ok && bound > thr {
                let mut dst = exec.take_u64(0);
                bitmap::and2_into_with(exec.simd(), &mut dst, parent, col_refs[j]);
                Some(dst)
            } else {
                None
            };
            children.push(Child {
                col,
                size,
                error,
                max_error,
                score,
                bound,
                bits: child_bits,
            });
        }
    }
    Expansion {
        children,
        considered: cand.len(),
    }
}

/// Wraps a single evaluated slice as a one-row [`LevelState`] for top-K
/// maintenance (serial reference path).
fn singleton_level(cols: &[u32], size: f64, error: f64, max_error: f64, score: f64) -> LevelState {
    LevelState {
        slices: vec![cols.to_vec()],
        sizes: vec![size],
        errors: vec![error],
        max_errors: vec![max_error],
        scores: vec![score],
    }
}

/// Intersection of two sorted u32 slices (serial reference path).
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SliceLine;
    use crate::config::SliceLineConfig;
    use sliceline_frame::IntMatrix;

    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..48u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 3);
            let f2 = 1 + ((i / 6) % 2);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 2 && f1 == 1 { 1.5 } else { 0.1 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config() -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.9)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_levelwise_topk_bitwise() {
        let (x0, e) = planted();
        let levelwise = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        let best_first = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        assert!(best_first.exact);
        assert_eq!(best_first.gap, 0.0);
        assert_eq!(best_first.result.top_k.len(), levelwise.top_k.len());
        for (a, b) in best_first.result.top_k.iter().zip(levelwise.top_k.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.size.to_bits(), b.size.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
        }
    }

    #[test]
    fn batched_matches_serial_reference() {
        let (x0, e) = planted();
        for batch in [1usize, 2, 7, 64] {
            let mut c = config();
            c.priority_batch = batch;
            let batched = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
            let serial = PrioritySliceLine::new(config())
                .find_slices_serial(&x0, &e)
                .unwrap();
            assert!(batched.exact && serial.exact);
            assert_eq!(batched.result.top_k.len(), serial.result.top_k.len());
            for (a, b) in batched.result.top_k.iter().zip(serial.result.top_k.iter()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "batch={batch}");
            }
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let (x0, e) = planted();
        let base = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        let mut c = config();
        c.parallel = sliceline_linalg::ParallelConfig::new(4);
        c.priority_batch = 3;
        let par = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert_eq!(par.result.top_k.len(), base.result.top_k.len());
        for (a, b) in par.result.top_k.iter().zip(base.result.top_k.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.predicates, b.predicates);
        }
    }

    #[test]
    fn shared_context_matches_owned_context() {
        let (x0, e) = planted();
        let base = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        let exec = ExecContext::serial();
        let a = PrioritySliceLine::new(config())
            .find_slices_in(&x0, &e, &exec)
            .unwrap();
        // A second run on the same context reuses pooled scratch.
        let b = PrioritySliceLine::new(config())
            .find_slices_in(&x0, &e, &exec)
            .unwrap();
        assert_eq!(a.result.top_k, base.result.top_k);
        assert_eq!(b.result.top_k, base.result.top_k);
    }

    #[test]
    fn finds_planted_slice_first() {
        let (x0, e) = planted();
        let r = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        assert_eq!(r.result.top_k[0].predicates, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn eval_budget_yields_anytime_result_with_sound_gap() {
        let (x0, e) = planted();
        let full = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        assert!(full.exact && full.gap == 0.0);
        let tiny = PrioritySliceLine::with_budget(config(), full.evaluated / 4)
            .find_slices(&x0, &e)
            .unwrap();
        // The budget stops before the frontier drains; the prefix of
        // rounds is shared with the full run, so work never exceeds it.
        assert!(tiny.evaluated <= full.evaluated);
        assert!(!tiny.result.top_k.is_empty());
        let anytime = tiny.result.stats.anytime.as_ref().unwrap();
        assert_eq!(anytime.exact, tiny.exact);
        assert_eq!(anytime.gap, tiny.gap);
        // Gap soundness: the true optimum either was found or is covered
        // by kth + gap.
        let kth = tiny
            .result
            .top_k
            .last()
            .map(|s| s.score.max(0.0))
            .unwrap_or(0.0);
        let found_opt = tiny
            .result
            .top_k
            .iter()
            .any(|s| s.score.to_bits() == full.result.top_k[0].score.to_bits());
        assert!(
            found_opt || full.result.top_k[0].score <= kth + tiny.gap,
            "opt {} kth {} gap {}",
            full.result.top_k[0].score,
            kth,
            tiny.gap
        );
        // Anytime scores never exceed the exact ones rank-by-rank.
        for (t, f) in tiny.result.top_k.iter().zip(full.result.top_k.iter()) {
            assert!(t.score <= f.score + 1e-12);
        }
    }

    #[test]
    fn deadline_budget_stops_and_reports() {
        let (x0, e) = planted();
        let mut c = config();
        c.budget_ms = 10_000; // generous: the run completes well within it
        let r = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert!(r.exact);
        let anytime = r.result.stats.anytime.unwrap();
        assert!(!anytime.deadline_hit);
        assert!(anytime.batches >= 1);
        assert!(anytime.frontier_peak >= anytime.frontier_final);
    }

    #[test]
    fn frontier_cap_drops_are_certified() {
        let (x0, e) = planted();
        let mut c = config();
        // A cap smaller than one node's bitmap forces every expandable
        // child to be dropped — the gap must cover the best of them.
        c.frontier_bytes = 1;
        let r = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        let full = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        let anytime = r.result.stats.anytime.as_ref().unwrap();
        if anytime.dropped > 0 {
            let kth = r
                .result
                .top_k
                .last()
                .map(|s| s.score.max(0.0))
                .unwrap_or(0.0);
            let found_opt = r
                .result
                .top_k
                .iter()
                .any(|s| s.score.to_bits() == full.result.top_k[0].score.to_bits());
            assert!(found_opt || full.result.top_k[0].score <= kth + r.gap);
        } else {
            assert!(r.exact);
        }
    }

    #[test]
    fn respects_max_level() {
        let (x0, e) = planted();
        let mut c = config();
        c.max_level = 1;
        let r = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert!(r.result.top_k.iter().all(|s| s.predicates.len() == 1));
        assert!(r.exact);
        let mut c = config();
        c.max_level = 2;
        let r = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert!(r.result.top_k.iter().all(|s| s.predicates.len() <= 2));
    }

    #[test]
    fn zero_errors_empty() {
        let (x0, _) = planted();
        let r = PrioritySliceLine::new(config())
            .find_slices(&x0, &vec![0.0; 48])
            .unwrap();
        assert!(r.result.top_k.is_empty());
        assert!(r.exact);
        assert_eq!(r.gap, 0.0);
    }

    #[test]
    fn node_ordering_is_nan_safe_and_total() {
        let n = |bound: f64, cols: Vec<u32>| Node {
            bound,
            cols,
            bits: None,
        };
        let mut heap = BinaryHeap::new();
        heap.push(n(0.5, vec![1]));
        heap.push(n(f64::NAN, vec![2]));
        heap.push(n(1.0, vec![3]));
        heap.push(n(f64::NEG_INFINITY, vec![4]));
        // total_cmp orders NaN above +inf; the pop sequence is total and
        // deterministic rather than corrupted by incomparability.
        let order: Vec<Vec<u32>> = std::iter::from_fn(|| heap.pop().map(|x| x.cols)).collect();
        assert_eq!(order, vec![vec![2], vec![3], vec![1], vec![4]]);
        // Ties break on fewer predicates first, then lexicographic cols.
        assert!(n(1.0, vec![1]) > n(1.0, vec![1, 2]));
        assert!(n(1.0, vec![1, 2]) > n(1.0, vec![1, 3]));
        assert_eq!(n(1.0, vec![1]), n(1.0, vec![1]));
    }

    #[test]
    fn stats_report_frontier_counters() {
        let (x0, e) = planted();
        let exec = ExecContext::serial();
        exec.enable_stats(true);
        let r = PrioritySliceLine::new(config())
            .find_slices_in(&x0, &e, &exec)
            .unwrap();
        let stats = &r.result.stats;
        assert!(stats.exec.is_some(), "telemetry scope must capture stats");
        assert!(stats.total_evaluated() > 0);
        assert_eq!(stats.levels[0].candidates, stats.l);
        let anytime = stats.anytime.as_ref().unwrap();
        assert_eq!(anytime.evaluated, r.evaluated);
        assert!(anytime.expanded > 0);
        assert!(anytime.batches > 0);
        // The exec-level profiles carry non-zero frontier counts too.
        let exec_stats = stats.exec.as_ref().unwrap();
        assert!(!exec_stats.levels.is_empty());
        assert!(exec_stats.levels.iter().any(|lp| lp.evaluated > 0));
    }

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }
}
