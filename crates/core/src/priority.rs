//! Priority-based (best-first) slice enumeration — the paper's §7
//! future-work direction ("priority-based enumeration, e.g., based on
//! errors or classes").
//!
//! Instead of expanding the lattice level by level, candidates are kept
//! in a max-heap ordered by their score upper bound (Eq. 3). The best
//! candidate is evaluated first, so the top-K converges quickly and the
//! search can stop as soon as the best remaining bound cannot beat the
//! current K-th score — or earlier under an explicit evaluation *budget*
//! (anytime behavior).
//!
//! Exactness argument: each slice is generated exactly once by *prefix
//! extension* (appending a predicate column greater than its largest),
//! and a node's Eq. 3 bound — computed from its own evaluated statistics —
//! dominates the score of **every** superset, prefix descendants
//! included. A node is only discarded when that bound cannot beat the
//! current threshold, so with an unlimited budget the returned top-K
//! equals the level-wise algorithm's (property-tested). The trade-off
//! versus Algorithm 1 is bound tightness: best-first sees one parent per
//! node where the level-wise join minimizes over all `L` parents.

use crate::algorithm::{SliceInfo, SliceLineResult};
use crate::config::SliceLineConfig;
use crate::error::Result;
use crate::init::{create_and_score_basic_slices, LevelState};
use crate::prepare::prepare;
use crate::stats::{LevelStats, RunStats};
use crate::topk::TopK;
use sliceline_linalg::ExecContext;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// A heap entry: a not-yet-expanded slice with its bound and row set.
struct Node {
    /// Upper bound on any descendant's score.
    bound: f64,
    /// Sorted projected column ids.
    cols: Vec<u32>,
    /// Matching row ids (the slice's extension in the data).
    rows: Vec<u32>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.cols == other.cols
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound; ties broken by fewer predicates then cols so
        // ordering is total and deterministic.
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.cols.len().cmp(&self.cols.len()))
            .then_with(|| other.cols.cmp(&self.cols))
    }
}

/// Outcome of a best-first run.
#[derive(Debug, Clone)]
pub struct PriorityResult {
    /// The (possibly anytime) top-K slices and run statistics.
    pub result: SliceLineResult,
    /// Slices evaluated (heap pops that passed the bound re-check).
    pub evaluated: usize,
    /// `true` when the search ran to completion — the top-K is then exact.
    /// `false` when the evaluation budget was exhausted first.
    pub exact: bool,
}

/// Best-first SliceLine with an optional evaluation budget.
///
/// ```
/// use sliceline::priority::PrioritySliceLine;
/// use sliceline::SliceLineConfig;
/// use sliceline_frame::IntMatrix;
///
/// let x0 = IntMatrix::from_rows(&[
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
///     vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2],
/// ]).unwrap();
/// let errors = vec![1.0, 0.1, 0.1, 0.1, 1.0, 0.1, 0.1, 0.1];
/// let config = SliceLineConfig::builder().k(1).min_support(2).build().unwrap();
/// let out = PrioritySliceLine::new(config).find_slices(&x0, &errors).unwrap();
/// assert!(out.exact);
/// assert_eq!(out.result.top_k[0].predicates, vec![(0, 1), (1, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct PrioritySliceLine {
    config: SliceLineConfig,
    /// Maximum number of slice evaluations (`None` = run to completion).
    budget: Option<usize>,
}

impl PrioritySliceLine {
    /// Creates an exhaustive (exact) best-first searcher.
    pub fn new(config: SliceLineConfig) -> Self {
        PrioritySliceLine {
            config,
            budget: None,
        }
    }

    /// Creates an anytime searcher stopping after `budget` evaluations.
    pub fn with_budget(config: SliceLineConfig, budget: usize) -> Self {
        PrioritySliceLine {
            config,
            budget: Some(budget),
        }
    }

    /// Runs the best-first search on a fresh execution context built
    /// from the configuration.
    pub fn find_slices(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
    ) -> Result<PriorityResult> {
        let exec = self.config.exec_context();
        self.find_slices_in(x0, errors, &exec)
    }

    /// Runs the best-first search on a caller-provided execution context
    /// — mirroring [`crate::SliceLine::find_slices_in`] — so budgeted /
    /// anytime queries can share a resident session's pooled context
    /// ([`crate::session::DatasetSession::exec`]) instead of allocating
    /// their own scratch buffers per call.
    pub fn find_slices_in(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
        exec: &ExecContext,
    ) -> Result<PriorityResult> {
        let start = Instant::now();
        let prepared = prepare(x0, errors, &self.config, exec)?;
        let mut stats = RunStats {
            sigma: prepared.sigma,
            n: prepared.n(),
            m: prepared.m,
            l: prepared.l(),
            ..Default::default()
        };
        let (proj, basic) = create_and_score_basic_slices(&prepared, exec);
        stats.basic_slices = basic.len();
        let sigma = prepared.sigma;
        let max_level = self.config.max_level.min(prepared.m);
        let mut topk = TopK::new(self.config.k, sigma);
        topk.update(&basic);
        // Row lists per projected column (the CSC view used to extend
        // nodes by intersection).
        let xt = proj.x.transpose();
        let num_cols = proj.x.cols();
        // Seed the heap with the basic slices.
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        for i in 0..basic.len() {
            let c = basic.slices[i][0];
            let bound = prepared.ctx.score_upper_bound(
                basic.sizes[i],
                basic.errors[i],
                basic.max_errors[i],
                sigma,
            );
            if bound > topk.prune_threshold() {
                heap.push(Node {
                    bound,
                    cols: vec![c],
                    rows: xt.row_cols(c as usize).to_vec(),
                });
            }
        }
        let mut evaluated = basic.len();
        let mut expansions = 0usize;
        let mut exact = true;
        while let Some(node) = heap.pop() {
            // Monotone threshold: re-check the bound at pop time.
            if node.bound <= topk.prune_threshold() {
                // Everything left in the heap is bounded by this bound.
                break;
            }
            if node.cols.len() >= max_level {
                continue;
            }
            if let Some(budget) = self.budget {
                if evaluated >= budget {
                    exact = false;
                    break;
                }
            }
            expansions += 1;
            // Prefix extension: children append a strictly larger column
            // of a feature not already used.
            let last_col = *node.cols.last().expect("nodes are non-empty") as usize;
            let used_feature = proj.col_feature[last_col];
            for next in (last_col + 1)..num_cols {
                if proj.col_feature[next] == used_feature
                    || node
                        .cols
                        .iter()
                        .any(|&c| proj.col_feature[c as usize] == proj.col_feature[next])
                {
                    continue;
                }
                // Intersect row sets (both sorted).
                let rows = intersect_sorted(&node.rows, xt.row_cols(next));
                if (rows.len() < sigma && self.config.pruning.size_pruning) || rows.is_empty() {
                    continue;
                }
                evaluated += 1;
                let mut error = 0.0;
                let mut max_error: f64 = 0.0;
                for &r in &rows {
                    let e = prepared.errors[r as usize];
                    error += e;
                    max_error = max_error.max(e);
                }
                if error <= 0.0 {
                    continue;
                }
                let size = rows.len() as f64;
                let mut cols = node.cols.clone();
                cols.push(next as u32);
                let score = prepared.ctx.score(size, error);
                topk.update(&singleton_level(&cols, size, error, max_error, score));
                let bound = prepared
                    .ctx
                    .score_upper_bound(size, error, max_error, sigma);
                if bound > topk.prune_threshold() && cols.len() < max_level {
                    heap.push(Node { bound, cols, rows });
                }
            }
        }
        stats.levels.push(LevelStats {
            level: max_level.min(prepared.m),
            candidates: evaluated,
            valid: expansions,
            enumeration: None,
            elapsed: start.elapsed(),
            threshold_after: topk.prune_threshold(),
            ..Default::default()
        });
        stats.total_elapsed = start.elapsed();
        let top_k = topk
            .entries()
            .iter()
            .map(|e| {
                let mut predicates: Vec<(usize, u32)> = e
                    .cols
                    .iter()
                    .map(|&c| {
                        (
                            proj.col_feature[c as usize] as usize,
                            proj.col_code[c as usize],
                        )
                    })
                    .collect();
                predicates.sort_unstable();
                SliceInfo {
                    predicates,
                    score: e.score,
                    size: e.size,
                    error: e.error,
                    max_error: e.max_error,
                    avg_error: if e.size > 0.0 { e.error / e.size } else { 0.0 },
                }
            })
            .collect();
        Ok(PriorityResult {
            result: SliceLineResult { top_k, stats },
            evaluated,
            exact,
        })
    }
}

/// Wraps a single evaluated slice as a one-row [`LevelState`] for top-K
/// maintenance.
fn singleton_level(cols: &[u32], size: f64, error: f64, max_error: f64, score: f64) -> LevelState {
    LevelState {
        slices: vec![cols.to_vec()],
        sizes: vec![size],
        errors: vec![error],
        max_errors: vec![max_error],
        scores: vec![score],
    }
}

/// Intersection of two sorted u32 slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SliceLine;
    use crate::config::SliceLineConfig;
    use sliceline_frame::IntMatrix;

    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..48u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 3);
            let f2 = 1 + ((i / 6) % 2);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 2 && f1 == 1 { 1.5 } else { 0.1 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config() -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .alpha(0.9)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_levelwise_topk() {
        let (x0, e) = planted();
        let levelwise = SliceLine::new(config()).find_slices(&x0, &e).unwrap();
        let best_first = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        assert!(best_first.exact);
        assert_eq!(best_first.result.top_k.len(), levelwise.top_k.len());
        for (a, b) in best_first.result.top_k.iter().zip(levelwise.top_k.iter()) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_context_matches_owned_context() {
        let (x0, e) = planted();
        let base = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        let exec = ExecContext::serial();
        let a = PrioritySliceLine::new(config())
            .find_slices_in(&x0, &e, &exec)
            .unwrap();
        // A second run on the same context reuses pooled scratch.
        let b = PrioritySliceLine::new(config())
            .find_slices_in(&x0, &e, &exec)
            .unwrap();
        assert_eq!(a.result.top_k, base.result.top_k);
        assert_eq!(b.result.top_k, base.result.top_k);
    }

    #[test]
    fn finds_planted_slice_first() {
        let (x0, e) = planted();
        let r = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        assert_eq!(r.result.top_k[0].predicates, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn budget_yields_anytime_result() {
        let (x0, e) = planted();
        let full = PrioritySliceLine::new(config())
            .find_slices(&x0, &e)
            .unwrap();
        // A tiny budget still returns the basic slices.
        let tiny = PrioritySliceLine::with_budget(config(), full.evaluated / 4)
            .find_slices(&x0, &e)
            .unwrap();
        assert!(!tiny.exact || tiny.evaluated <= full.evaluated);
        assert!(!tiny.result.top_k.is_empty());
        // Anytime scores never exceed the exact ones.
        if let (Some(t), Some(f)) = (tiny.result.top_k.first(), full.result.top_k.first()) {
            assert!(t.score <= f.score + 1e-9);
        }
        // Budget exhausted strictly fewer evaluations.
        assert!(tiny.evaluated <= full.evaluated);
    }

    #[test]
    fn respects_max_level() {
        let (x0, e) = planted();
        let mut c = config();
        c.max_level = 1;
        let r = PrioritySliceLine::new(c).find_slices(&x0, &e).unwrap();
        assert!(r.result.top_k.iter().all(|s| s.predicates.len() == 1));
    }

    #[test]
    fn zero_errors_empty() {
        let (x0, _) = planted();
        let r = PrioritySliceLine::new(config())
            .find_slices(&x0, &vec![0.0; 48])
            .unwrap();
        assert!(r.result.top_k.is_empty());
        assert!(r.exact);
    }

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }
}
