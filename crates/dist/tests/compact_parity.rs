//! Compaction parity through the distributed driver: `--compact`-style
//! policies must not change what [`DistSliceLine`] finds.
//!
//! On a single node the partition is the whole (order-preserved) matrix,
//! so compaction-off and compaction-on accumulate identical float
//! sequences and the comparison is bit-for-bit. On multiple nodes the
//! gather moves partition boundaries, which re-associates per-node error
//! partial sums (documented in `cluster.rs`), so there the structural
//! results (predicates, ranks, sizes, max errors) must match exactly and
//! scores/errors up to 1e-9 — the same contract the cluster's own
//! single-vs-multi-node test enforces.

use sliceline::config::{CompactKernel, SliceLineConfig};
use sliceline::SliceLineResult;
use sliceline_dist::{ClusterConfig, DistSliceLine, Strategy};
use sliceline_frame::IntMatrix;
use std::time::Duration;

/// Planted dataset with a cold tail: rows past `hot` sit on reserved
/// codes with zero error, so level-1 coverage already drops below any
/// threshold and the gather fires on every multi-level run.
fn dataset() -> (IntMatrix, Vec<f64>) {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    let n = 96usize;
    let hot = 56usize;
    for i in 0..n {
        if i < hot {
            let f0 = 1 + (i % 2) as u32;
            let f1 = 1 + ((i / 2) % 2) as u32;
            let f2 = 1 + ((i / 4) % 3) as u32;
            rows.push(vec![f0, f1, f2]);
            // Full-precision, slice-correlated errors: no ties, and the
            // planted (f0=1, f1=2) slice dominates.
            let base = if f0 == 1 && f1 == 2 { 0.9 } else { 0.04 };
            errors.push(base + (i as f64) * 1e-4);
        } else {
            rows.push(vec![3, 3, 4]);
            errors.push(0.0);
        }
    }
    (IntMatrix::from_rows(&rows).unwrap(), errors)
}

fn fast_cluster(nodes: usize, threads_per_node: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        threads_per_node,
        broadcast_latency: Duration::ZERO,
        broadcast_per_nnz: Duration::ZERO,
        aggregate_latency: Duration::ZERO,
        bitmap_kernel: false,
    }
}

fn config(compact: CompactKernel) -> SliceLineConfig {
    SliceLineConfig::builder()
        .k(4)
        .min_support(2)
        .alpha(0.95)
        .threads(1)
        .compact(compact)
        .compact_below(1.0)
        .build()
        .unwrap()
}

fn run(strategy: Strategy, compact: CompactKernel) -> SliceLineResult {
    let (x0, e) = dataset();
    DistSliceLine::new(config(compact), strategy)
        .find_slices(&x0, &e)
        .unwrap()
}

fn assert_counters_identical(off: &SliceLineResult, on: &SliceLineResult, what: &str) {
    assert_eq!(off.stats.levels.len(), on.stats.levels.len(), "{what}");
    for (a, b) in off.stats.levels.iter().zip(&on.stats.levels) {
        assert_eq!(a.candidates, b.candidates, "{what} level {}", a.level);
        assert_eq!(a.valid, b.valid, "{what} level {}", a.level);
        match (&a.enumeration, &b.enumeration) {
            (None, None) => {}
            (Some(ea), Some(eb)) => assert!(
                ea.same_counters(eb),
                "{what} level {}: {ea:?} vs {eb:?}",
                a.level
            ),
            _ => panic!("{what} level {}: enumeration presence diverged", a.level),
        }
    }
}

#[test]
fn single_node_dist_is_bit_for_bit_identical() {
    for strategy in [
        Strategy::DistParfor(fast_cluster(1, 1)),
        Strategy::MtOps {
            threads: 1,
            block_size: 16,
        },
        Strategy::MtParfor {
            threads: 1,
            block_size: 16,
        },
    ] {
        let off = run(strategy, CompactKernel::Off);
        for policy in [CompactKernel::On, CompactKernel::Auto { min_rows: 1 }] {
            let on = run(strategy, policy);
            assert_eq!(off.top_k, on.top_k, "{strategy:?} {policy:?}");
            assert_counters_identical(&off, &on, &format!("{strategy:?} {policy:?}"));
        }
        // The gather actually fired: the cold tail leaves the working
        // set at level 1.
        let on = run(strategy, CompactKernel::On);
        assert!(
            on.stats.levels[0].rows_retained < on.stats.n,
            "{strategy:?}: compaction never fired: {:?}",
            on.stats.levels
        );
    }
}

#[test]
fn multi_node_dist_matches_structurally() {
    for nodes in [2usize, 3, 5] {
        let strategy = Strategy::DistParfor(fast_cluster(nodes, 2));
        let off = run(strategy, CompactKernel::Off);
        let on = run(strategy, CompactKernel::On);
        assert_eq!(off.top_k.len(), on.top_k.len(), "{nodes} nodes");
        for (a, b) in off.top_k.iter().zip(&on.top_k) {
            assert_eq!(a.predicates, b.predicates, "{nodes} nodes");
            assert_eq!(a.size, b.size, "{nodes} nodes");
            assert_eq!(a.max_error, b.max_error, "{nodes} nodes");
            assert!(
                (a.score - b.score).abs() < 1e-9 && (a.error - b.error).abs() < 1e-9,
                "{nodes} nodes: score/error drifted beyond association noise"
            );
        }
        assert_counters_identical(&off, &on, &format!("{nodes} nodes"));
    }
}
