//! Property tests: distributed slice evaluation equals the single-node
//! computation for any partitioning, and every strategy returns the same
//! statistics.

use proptest::prelude::*;
use sliceline_dist::{ClusterConfig, PartitionedMatrix, SimulatedCluster};
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::time::Duration;

/// A random one-hot-ish matrix (2 features) plus aligned errors and a
/// level-2 slice set.
fn workload() -> impl Strategy<Value = (CsrMatrix, Vec<f64>, Vec<Vec<u32>>)> {
    (4usize..=40, 2u32..=4, 2u32..=4).prop_flat_map(|(n, d0, d1)| {
        let rows = proptest::collection::vec((0..d0, 0..d1), n..=n);
        let errors =
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(0.5), Just(2.0)], n..=n);
        (rows, errors, Just((d0, d1))).prop_map(move |(codes, errors, (d0, d1))| {
            let cols = (d0 + d1) as usize;
            let row_lists: Vec<Vec<u32>> = codes.iter().map(|&(a, b)| vec![a, d0 + b]).collect();
            let x = CsrMatrix::from_binary_rows(cols, &row_lists).unwrap();
            // All cross-feature pairs as level-2 slices.
            let mut slices = Vec::new();
            for a in 0..d0 {
                for b in 0..d1 {
                    slices.push(vec![a, d0 + b]);
                }
            }
            (x, errors, slices)
        })
    })
}

fn fast_cluster(nodes: usize, threads: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        threads_per_node: threads,
        broadcast_latency: Duration::ZERO,
        broadcast_per_nnz: Duration::ZERO,
        aggregate_latency: Duration::ZERO,
        bitmap_kernel: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_partitioning_matches_single_node(
        (x, errors, slices) in workload(),
        nodes in 1usize..6,
        threads in 1usize..3,
    ) {
        let single = SimulatedCluster::new(fast_cluster(1, 1), &x, &errors)
            .evaluate_slices(&slices, 2, &ExecContext::serial());
        let multi = SimulatedCluster::new(fast_cluster(nodes, threads), &x, &errors)
            .evaluate_slices(&slices, 2, &ExecContext::serial());
        prop_assert_eq!(&multi.0, &single.0);
        for (a, b) in multi.1.iter().zip(single.1.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert_eq!(&multi.2, &single.2);
        // Statistics equal a direct per-slice computation.
        for (i, cols) in slices.iter().enumerate() {
            let mut size = 0.0;
            let mut err = 0.0;
            let mut max: f64 = 0.0;
            for (r, &e) in errors.iter().enumerate().take(x.rows()) {
                let row = x.row_cols(r);
                if cols.iter().all(|c| row.contains(c)) {
                    size += 1.0;
                    err += e;
                    max = max.max(e);
                }
            }
            prop_assert_eq!(single.0[i], size);
            prop_assert!((single.1[i] - err).abs() < 1e-9);
            prop_assert_eq!(single.2[i], max);
        }
    }

    #[test]
    fn partition_reassembles(
        (x, errors, _) in workload(),
        parts in 1usize..8,
    ) {
        let p = PartitionedMatrix::split(&x, &errors, parts);
        prop_assert_eq!(p.total_rows(), x.rows());
        prop_assert!(p.num_partitions() <= parts.max(1));
        // Row content preserved partition by partition.
        for i in 0..p.num_partitions() {
            let (part, errs) = p.partition(i);
            let off = p.row_offset(i);
            prop_assert_eq!(errs.len(), part.rows());
            for r in 0..part.rows() {
                prop_assert_eq!(part.row_cols(r), x.row_cols(off + r));
                prop_assert_eq!(errs[r], errors[off + r]);
            }
        }
    }
}
