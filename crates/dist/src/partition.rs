//! Row-wise partitioning of the one-hot matrix across simulated nodes.

use sliceline_linalg::CsrMatrix;

/// A CSR matrix split row-wise into `p` contiguous partitions, with the
/// error vector split identically — the layout of HDFS blocks a Spark job
/// would scan data-locally.
#[derive(Debug, Clone)]
pub struct PartitionedMatrix {
    parts: Vec<CsrMatrix>,
    error_parts: Vec<Vec<f64>>,
    row_offsets: Vec<usize>,
    cols: usize,
}

impl PartitionedMatrix {
    /// Splits `x` and the row-aligned `errors` into `p` near-equal row
    /// partitions (`p` clamped to at least 1 and at most `nrows`).
    pub fn split(x: &CsrMatrix, errors: &[f64], p: usize) -> Self {
        assert_eq!(x.rows(), errors.len(), "errors must align with X rows");
        let n = x.rows();
        let p = p.clamp(1, n.max(1));
        let per = n.div_ceil(p);
        let mut parts = Vec::with_capacity(p);
        let mut error_parts = Vec::with_capacity(p);
        let mut row_offsets = Vec::with_capacity(p);
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + per).min(n);
            let indices: Vec<usize> = (lo..hi).collect();
            parts.push(
                x.select_rows(&indices)
                    .expect("partition ranges are in bounds"),
            );
            error_parts.push(errors[lo..hi].to_vec());
            row_offsets.push(lo);
            lo = hi;
        }
        if parts.is_empty() {
            parts.push(CsrMatrix::zeros(0, x.cols()));
            error_parts.push(Vec::new());
            row_offsets.push(0);
        }
        PartitionedMatrix {
            parts,
            error_parts,
            row_offsets,
            cols: x.cols(),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Borrow partition `i` and its errors.
    pub fn partition(&self, i: usize) -> (&CsrMatrix, &[f64]) {
        (&self.parts[i], &self.error_parts[i])
    }

    /// Global row index of partition `i`'s first row.
    pub fn row_offset(&self, i: usize) -> usize {
        self.row_offsets[i]
    }

    /// Total rows across partitions.
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(|p| p.rows()).sum()
    }

    /// Column count (identical across partitions).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize) -> (CsrMatrix, Vec<f64>) {
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![(i % 4) as u32]).collect();
        let x = CsrMatrix::from_binary_rows(4, &rows).unwrap();
        let e: Vec<f64> = (0..n).map(|i| i as f64).collect();
        (x, e)
    }

    #[test]
    fn splits_evenly() {
        let (x, e) = matrix(10);
        let p = PartitionedMatrix::split(&x, &e, 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.total_rows(), 10);
        assert_eq!(p.cols(), 4);
        assert_eq!(p.row_offset(0), 0);
        assert_eq!(p.row_offset(1), 4);
        // Errors travel with their rows.
        let (_, e1) = p.partition(1);
        assert_eq!(e1, &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn partition_rows_match_source() {
        let (x, e) = matrix(7);
        let p = PartitionedMatrix::split(&x, &e, 2);
        let (part0, _) = p.partition(0);
        for r in 0..part0.rows() {
            assert_eq!(part0.row_cols(r), x.row_cols(r));
        }
        let (part1, _) = p.partition(1);
        let off = p.row_offset(1);
        for r in 0..part1.rows() {
            assert_eq!(part1.row_cols(r), x.row_cols(off + r));
        }
    }

    #[test]
    fn more_partitions_than_rows_clamped() {
        let (x, e) = matrix(2);
        let p = PartitionedMatrix::split(&x, &e, 10);
        assert_eq!(p.num_partitions(), 2);
    }

    #[test]
    fn single_partition_is_whole_matrix() {
        let (x, e) = matrix(5);
        let p = PartitionedMatrix::split(&x, &e, 1);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition(0).0.rows(), 5);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_errors_panic() {
        let (x, _) = matrix(5);
        PartitionedMatrix::split(&x, &[1.0], 2);
    }
}
