//! Parallelization strategies (Fig. 7b) and a distributed SliceLine
//! driver.
//!
//! [`evaluate_with_strategy`] evaluates one level's slices under MT-Ops,
//! MT-PFor, or Dist-PFor; [`DistSliceLine`] plugs the chosen strategy into
//! the core level-wise loop (enumeration, pruning and top-K stay on the
//! driver, exactly like the paper's hybrid runtime plans keep everything
//! but slice evaluation local).

use crate::cluster::{ClusterConfig, SimulatedCluster};
use sliceline::config::{EvalKernel, SliceLineConfig};
use sliceline::evaluate::{evaluate_slices, EvalEngine};
use sliceline::init::{create_and_score_basic_slices, LevelState};
use sliceline::prepare::{prepare, PreparedData};
use sliceline::session::{DatasetSession, SliceQuery};
use sliceline::stats::RunStats;
use sliceline::{run_lattice, LatticeRun, LatticeSeed, Result, SliceLineResult};
use sliceline_linalg::{CsrMatrix, ExecContext};
use std::time::Instant;

/// How slice evaluation is parallelized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Multi-threaded operations: data-parallel kernels with a barrier per
    /// block operation.
    MtOps {
        /// Worker threads.
        threads: usize,
        /// Evaluation block size `b`.
        block_size: usize,
    },
    /// Multi-threaded parallel-for over slices: workers own slice ranges
    /// end-to-end, no per-op barriers.
    MtParfor {
        /// Worker threads.
        threads: usize,
        /// Per-worker evaluation block size `b`.
        block_size: usize,
    },
    /// Distributed slice evaluation on the simulated cluster.
    DistParfor(ClusterConfig),
}

/// Evaluates one level of slices under the given strategy, returning the
/// scored [`LevelState`].
///
/// All strategies draw scratch buffers from (and report telemetry to)
/// `exec`; thread counts come from the strategy, realized as
/// [`ExecContext::with_threads`] views over the shared context.
pub fn evaluate_with_strategy(
    x: &CsrMatrix,
    errors: &[f64],
    slices: Vec<Vec<u32>>,
    level: usize,
    ctx: &sliceline::ScoringContext,
    strategy: &Strategy,
    exec: &ExecContext,
) -> LevelState {
    match *strategy {
        Strategy::MtOps {
            threads,
            block_size,
        } => evaluate_slices(
            x,
            errors,
            slices,
            level,
            ctx,
            EvalKernel::Blocked { block_size },
            &exec.with_threads(threads),
        ),
        Strategy::MtParfor {
            threads,
            block_size,
        } => {
            // Workers take contiguous slice ranges and run the blocked
            // kernel serially inside — one join at the end of the level.
            let k = slices.len();
            if k == 0 {
                return LevelState::default();
            }
            let workers = threads.clamp(1, k);
            let per = k.div_ceil(workers);
            let ranges: Vec<(usize, usize)> = (0..workers)
                .map(|w| (w * per, ((w + 1) * per).min(k)))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            let slice_refs = &slices;
            let worker_exec = exec.with_threads(1);
            let parts: Vec<LevelState> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|(lo, hi)| {
                        let we = worker_exec.clone();
                        scope.spawn(move || {
                            evaluate_slices(
                                x,
                                errors,
                                slice_refs[lo..hi].to_vec(),
                                level,
                                ctx,
                                EvalKernel::Blocked { block_size },
                                &we,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            let mut out = LevelState::default();
            for p in parts {
                out.slices.extend(p.slices);
                out.sizes.extend(p.sizes);
                out.errors.extend(p.errors);
                out.max_errors.extend(p.max_errors);
                out.scores.extend(p.scores);
            }
            out
        }
        Strategy::DistParfor(config) => {
            let cluster = SimulatedCluster::new(config, x, errors);
            let (sizes, errs, max_errs) = cluster.evaluate_slices(&slices, level, exec);
            let scores = ctx.score_all(&sizes, &errs);
            LevelState {
                slices,
                sizes,
                errors: errs,
                max_errors: max_errs,
                scores,
            }
        }
    }
}

/// SliceLine with pluggable evaluation strategy: the driver runs
/// enumeration/pruning/top-K locally and ships only slice evaluation to
/// the strategy (mirroring the paper's hybrid local/distributed plans).
#[derive(Debug, Clone)]
pub struct DistSliceLine {
    config: SliceLineConfig,
    strategy: Strategy,
}

impl DistSliceLine {
    /// Creates a driver with the given core config and strategy.
    pub fn new(config: SliceLineConfig, strategy: Strategy) -> Self {
        DistSliceLine { config, strategy }
    }

    /// Runs the level-wise algorithm with strategy-based evaluation on a
    /// fresh execution context built from the configuration.
    pub fn find_slices(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
    ) -> Result<SliceLineResult> {
        let exec = self.config.exec_context();
        self.find_slices_in(x0, errors, &exec)
    }

    /// Runs the level-wise algorithm on a caller-provided execution
    /// context (shared scratch pool, tracer, and metrics — mirrors
    /// [`sliceline::SliceLine::find_slices_in`]). Telemetry is collected
    /// on a per-run scope ([`ExecContext::run_scoped`]), so concurrent
    /// runs on one context cannot corrupt each other's statistics.
    ///
    /// The level loop is the core crate's shared [`run_lattice`] runner
    /// with the strategy dispatch plugged in as the evaluator, so
    /// results stay bit-for-bit aligned with the local driver.
    pub fn find_slices_in(
        &self,
        x0: &sliceline_frame::IntMatrix,
        errors: &[f64],
        exec: &ExecContext,
    ) -> Result<SliceLineResult> {
        let scope = exec.run_scoped();
        let exec = &scope;
        let start = Instant::now();
        let mut run_span = exec.tracer().span("find_slices", "core");
        let prepared = prepare(x0, errors, &self.config, exec)?;
        exec.add_prepare(start.elapsed());
        run_span.add_arg("n", prepared.n());
        run_span.add_arg("m", prepared.m);
        run_span.add_arg("l", prepared.l());
        let run = LatticeRun {
            config: &self.config,
            ctx: prepared.ctx,
            sigma: prepared.sigma,
            // Driver-side compaction state. The strategy paths evaluate
            // through the blocked/partitioned kernels, so the engine
            // never holds packed bitmaps and coverage falls back to the
            // CSR pass; the simulated cluster repartitions the
            // (compacted) matrix at each broadcast, so partitions and
            // the skew gauge follow along.
            engine: EvalEngine::default(),
            stats: RunStats {
                sigma: prepared.sigma,
                n: prepared.n(),
                m: prepared.m,
                l: prepared.l(),
                ..Default::default()
            },
            start,
        };
        let strategy = &self.strategy;
        let result = run_lattice(
            run,
            exec,
            move |exec| {
                let (proj, level) = create_and_score_basic_slices(&prepared, exec);
                let PreparedData { errors, .. } = prepared;
                LatticeSeed {
                    proj,
                    level,
                    errors,
                }
            },
            |x, errors, slices, level, ctx, _engine, exec| {
                evaluate_with_strategy(x, errors, slices, level, ctx, strategy, exec)
            },
        );
        run_span.add_arg("levels", result.stats.levels.len());
        Ok(result)
    }

    /// Runs a query against a resident [`DatasetSession`] — the
    /// distributed counterpart of
    /// [`DatasetSession::query`](sliceline::session::DatasetSession::query).
    ///
    /// The session's encoded matrix, cached basic-slice statistics, and
    /// scratch pool all survive across calls, so repeat distributed
    /// queries skip preparation exactly like local ones; per-partition
    /// state is re-derived from the resident (compacted) working set at
    /// each broadcast. The driver's own `config` is ignored in favor of
    /// the query's, matching the session API.
    pub fn find_slices_session(
        &self,
        session: &mut DatasetSession,
        query: &SliceQuery,
    ) -> Result<SliceLineResult> {
        let strategy = &self.strategy;
        session.query_with(query, |x, errors, slices, level, ctx, _engine, exec| {
            evaluate_with_strategy(x, errors, slices, level, ctx, strategy, exec)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline::SliceLine;
    use sliceline_frame::IntMatrix;
    use std::time::Duration;

    fn planted() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..64u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 2);
            let f2 = 1 + ((i / 4) % 4);
            rows.push(vec![f0, f1, f2]);
            errors.push(if f0 == 1 && f1 == 2 { 1.0 } else { 0.05 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn core_config() -> SliceLineConfig {
        SliceLineConfig::builder()
            .k(4)
            .min_support(2)
            .threads(1)
            .build()
            .unwrap()
    }

    fn fast_cluster(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            threads_per_node: 2,
            broadcast_latency: Duration::ZERO,
            broadcast_per_nnz: Duration::ZERO,
            aggregate_latency: Duration::ZERO,
            bitmap_kernel: false,
        }
    }

    #[test]
    fn all_strategies_match_local_results() {
        let (x0, e) = planted();
        let local = SliceLine::new(core_config()).find_slices(&x0, &e).unwrap();
        let strategies = [
            Strategy::MtOps {
                threads: 2,
                block_size: 4,
            },
            Strategy::MtParfor {
                threads: 3,
                block_size: 4,
            },
            Strategy::DistParfor(fast_cluster(3)),
            Strategy::DistParfor(ClusterConfig {
                bitmap_kernel: true,
                ..fast_cluster(3)
            }),
        ];
        for s in strategies {
            let r = DistSliceLine::new(core_config(), s)
                .find_slices(&x0, &e)
                .unwrap();
            assert_eq!(r.top_k, local.top_k, "strategy {s:?} diverged");
        }
    }

    #[test]
    fn session_queries_match_one_shot() {
        let (x0, e) = planted();
        let driver = DistSliceLine::new(
            core_config(),
            Strategy::MtParfor {
                threads: 3,
                block_size: 4,
            },
        );
        let one_shot = driver.find_slices(&x0, &e).unwrap();
        let mut session = DatasetSession::new(&x0, &e, &ExecContext::serial()).unwrap();
        let q = SliceQuery::new(core_config());
        let cold = driver.find_slices_session(&mut session, &q).unwrap();
        let warm = driver.find_slices_session(&mut session, &q).unwrap();
        assert_eq!(cold.top_k, one_shot.top_k);
        assert_eq!(warm.top_k, one_shot.top_k);
    }

    #[test]
    fn mtparfor_partitions_slices_not_rows() {
        let (x0, e) = planted();
        let r = DistSliceLine::new(
            core_config(),
            Strategy::MtParfor {
                threads: 8,
                block_size: 1,
            },
        )
        .find_slices(&x0, &e)
        .unwrap();
        assert!(!r.top_k.is_empty());
        assert_eq!(r.top_k[0].predicates, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn dist_finds_planted_slice() {
        let (x0, e) = planted();
        let r = DistSliceLine::new(core_config(), Strategy::DistParfor(fast_cluster(4)))
            .find_slices(&x0, &e)
            .unwrap();
        assert_eq!(r.top_k[0].predicates, vec![(0, 1), (1, 2)]);
        assert!(r.stats.max_level() >= 2);
    }

    #[test]
    fn strategy_evaluate_empty() {
        let x = CsrMatrix::zeros(4, 2);
        let ctx = sliceline::ScoringContext::new(&[1.0; 4], 0.95);
        for s in [
            Strategy::MtOps {
                threads: 2,
                block_size: 2,
            },
            Strategy::MtParfor {
                threads: 2,
                block_size: 2,
            },
        ] {
            let out = evaluate_with_strategy(
                &x,
                &[1.0; 4],
                Vec::new(),
                2,
                &ctx,
                &s,
                &ExecContext::serial(),
            );
            assert!(out.is_empty());
        }
    }
}
