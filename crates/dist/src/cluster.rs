//! The simulated cluster: nodes as thread groups, broadcast and
//! aggregation with configurable latencies.

use crate::partition::PartitionedMatrix;
use sliceline::evaluate::{evaluate_slice_stats, evaluate_slice_stats_bitmap, merge_stat_partials};
use sliceline_linalg::{secs, BitMatrix, CsrMatrix, ExecContext};
use std::time::{Duration, Instant};

/// Gauge accumulating the modeled broadcast cost (virtual seconds) across
/// all broadcasts of a run.
pub const VIRTUAL_BROADCAST_GAUGE: &str = "dist.virtual.broadcast_secs";
/// Gauge accumulating the modeled aggregate cost (virtual seconds).
pub const VIRTUAL_AGGREGATE_GAUGE: &str = "dist.virtual.aggregate_secs";

/// Cluster shape and simulated communication costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker nodes (the paper's cluster has 12).
    pub nodes: usize,
    /// Threads per node (the paper's nodes have 32 vcores).
    pub threads_per_node: usize,
    /// Fixed latency charged once per broadcast (driver → all nodes).
    pub broadcast_latency: Duration,
    /// Additional serialization cost per broadcast slice-matrix non-zero.
    pub broadcast_per_nnz: Duration,
    /// Fixed latency charged for aggregating per-node partials.
    pub aggregate_latency: Duration,
    /// Route per-node evaluation through the packed bitmap kernel: each
    /// node packs its row partition once at distribution time and scans
    /// word-wise `AND`s instead of the sparse-float fused walk.
    pub bitmap_kernel: bool,
}

impl Default for ClusterConfig {
    /// A laptop-friendly 4-node × 2-thread cluster with millisecond-scale
    /// communication costs (large enough to be visible, small enough for
    /// CI).
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            threads_per_node: 2,
            broadcast_latency: Duration::from_micros(500),
            broadcast_per_nnz: Duration::from_nanos(20),
            aggregate_latency: Duration::from_micros(200),
            bitmap_kernel: false,
        }
    }
}

/// A cluster with partitioned data, ready to evaluate slice matrices.
#[derive(Debug, Clone)]
pub struct SimulatedCluster {
    config: ClusterConfig,
    data: PartitionedMatrix,
    /// Per-partition packed column bitmaps; empty unless
    /// [`ClusterConfig::bitmap_kernel`] is set.
    bitmaps: Vec<BitMatrix>,
}

/// Per-node partial slice statistics `(sizes, errors, max_errors)`.
type Partial = (Vec<f64>, Vec<f64>, Vec<f64>);

impl SimulatedCluster {
    /// Distributes `x`/`errors` across the configured number of nodes.
    pub fn new(config: ClusterConfig, x: &CsrMatrix, errors: &[f64]) -> Self {
        let nodes = config.nodes.max(1);
        let data = PartitionedMatrix::split(x, errors, nodes);
        // Packing is part of data distribution: each node converts its
        // partition to bitmaps once and amortizes it over every level.
        let bitmaps = if config.bitmap_kernel {
            (0..data.num_partitions())
                .map(|p| BitMatrix::from_csr(data.partition(p).0))
                .collect()
        } else {
            Vec::new()
        };
        SimulatedCluster {
            config,
            data,
            bitmaps,
        }
    }

    /// Borrow the cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Borrow the partitioned data.
    pub fn data(&self) -> &PartitionedMatrix {
        &self.data
    }

    /// Distributed slice evaluation (the paper's Dist-PFor): broadcast
    /// `slices`, let every node scan its partition with its local thread
    /// pool, and aggregate the partial `(ss, se, sm)` statistics.
    ///
    /// Every node runs the same fused scan as the local driver
    /// ([`evaluate_slice_stats`]) — or, with
    /// [`ClusterConfig::bitmap_kernel`], the packed scan over its
    /// prebuilt partition bitmaps ([`evaluate_slice_stats_bitmap`]) — on
    /// a context view sharing `exec`'s scratch pool and telemetry but
    /// restricted to `threads_per_node` threads; each node's partial is
    /// counted in the current level's telemetry.
    ///
    /// Returns `(sizes, errors, max_errors)` aligned with `slices`.
    pub fn evaluate_slices(
        &self,
        slices: &[Vec<u32>],
        level: usize,
        exec: &ExecContext,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let k = slices.len();
        if k == 0 {
            return (Vec::new(), Vec::new(), Vec::new());
        }
        let parts = self.data.num_partitions();
        let _eval_span = exec
            .tracer()
            .span("dist.evaluate", "dist")
            .arg("slices", k)
            .arg("level", level)
            .arg("nodes", parts);
        // Broadcast: one serialization of S, charged per nnz, plus fixed
        // latency. Each node receives its own copy (the clone below).
        let nnz: usize = slices.iter().map(|s| s.len()).sum();
        let broadcast_cost =
            self.config.broadcast_latency + self.config.broadcast_per_nnz * (nnz as u32);
        {
            let _span = exec.tracer().span("broadcast", "dist").arg("nnz", nnz);
            // Virtual clock: charge the modeled cost to an obs gauge
            // instead of sleeping, so scale-out benches stop burning real
            // wall time while `--stats` keeps the modeled numbers.
            exec.metrics()
                .gauge(VIRTUAL_BROADCAST_GAUGE)
                .add(secs(broadcast_cost));
        }
        let node_exec = exec.with_threads(self.config.threads_per_node);
        let results: Vec<(Partial, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..parts)
                .map(|node| {
                    let slices_copy: Vec<Vec<u32>> = slices.to_vec(); // the "broadcast"
                    let data = &self.data;
                    let ne = node_exec.clone();
                    let bitmaps = &self.bitmaps;
                    scope.spawn(move || {
                        let _span = ne
                            .tracer()
                            .span("node.eval", "dist")
                            .arg("node", node)
                            .arg("slices", k)
                            .arg("level", level);
                        let node_start = Instant::now();
                        let (x, errors) = data.partition(node);
                        let partial = if let Some(bits) = bitmaps.get(node) {
                            evaluate_slice_stats_bitmap(bits, errors, &slices_copy, &ne)
                        } else {
                            evaluate_slice_stats(x, errors, &slices_copy, level, &ne)
                        };
                        ne.record_level(|p| p.partials += 1);
                        (partial, node_start.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });
        // Partition skew: max/mean per-node wall time for this broadcast,
        // folded into the level profile (max across broadcasts) and
        // surfaced in `--stats` and the run manifest.
        let times: Vec<f64> = results.iter().map(|(_, d)| secs(*d)).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let max = times.iter().cloned().fold(0.0, f64::max);
        let skew = if mean > 0.0 { max / mean } else { 0.0 };
        let kernel = if self.bitmaps.is_empty() {
            "dist:fused"
        } else {
            "dist:bitmap"
        };
        exec.record_level(|p| {
            p.partition_skew = p.partition_skew.max(skew);
            p.evaluated += k as u64;
            p.kernel = Some(kernel);
        });
        // Aggregate (the result shuffle back to the driver) — modeled
        // cost on the virtual clock, same as the broadcast above.
        {
            let _span = exec.tracer().span("aggregate", "dist").arg("nodes", parts);
            exec.metrics()
                .gauge(VIRTUAL_AGGREGATE_GAUGE)
                .add(secs(self.config.aggregate_latency));
        }
        merge_stat_partials(results.into_iter().map(|(p, _)| p), exec)
            .expect("at least one partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (CsrMatrix, Vec<f64>) {
        // 40 rows over 6 one-hot columns (features {0,1,2} × {3,4,5}).
        let rows: Vec<Vec<u32>> = (0..40)
            .map(|i| vec![(i % 3) as u32, 3 + (i % 2) as u32])
            .collect();
        let x = CsrMatrix::from_binary_rows(6, &rows).unwrap();
        let e: Vec<f64> = (0..40)
            .map(|i| if i % 6 == 0 { 1.0 } else { 0.1 })
            .collect();
        (x, e)
    }

    fn fast_config(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            threads_per_node: 2,
            broadcast_latency: Duration::ZERO,
            broadcast_per_nnz: Duration::ZERO,
            aggregate_latency: Duration::ZERO,
            bitmap_kernel: false,
        }
    }

    #[test]
    fn distributed_matches_single_node() {
        let (x, e) = fixture();
        let slices = [vec![0, 3], vec![1, 4], vec![2, 3], vec![0], vec![4]];
        // Mixed-arity slices are evaluated per level; use level-2 set.
        let l2: Vec<Vec<u32>> = slices[..3].to_vec();
        let single = SimulatedCluster::new(fast_config(1), &x, &e).evaluate_slices(
            &l2,
            2,
            &ExecContext::serial(),
        );
        for nodes in [2, 4, 7] {
            let multi = SimulatedCluster::new(fast_config(nodes), &x, &e).evaluate_slices(
                &l2,
                2,
                &ExecContext::serial(),
            );
            assert_eq!(multi.0, single.0, "sizes differ at {nodes} nodes");
            // Error sums may differ by float association across partitions.
            for (a, b) in multi.1.iter().zip(single.1.iter()) {
                assert!((a - b).abs() < 1e-9, "errors differ at {nodes} nodes");
            }
            assert_eq!(multi.2, single.2);
        }
    }

    #[test]
    fn statistics_are_correct() {
        let (x, e) = fixture();
        let cluster = SimulatedCluster::new(fast_config(3), &x, &e);
        let (ss, se, sm) = cluster.evaluate_slices(&[vec![0, 3]], 2, &ExecContext::serial());
        // Rows with i%3==0 and i%2==0 -> i%6==0: rows 0,6,12,18,24,30,36.
        assert_eq!(ss, vec![7.0]);
        assert!((se[0] - 7.0).abs() < 1e-12);
        assert_eq!(sm, vec![1.0]);
    }

    #[test]
    fn bitmap_nodes_match_fused_nodes() {
        let (x, e) = fixture();
        let slices = vec![vec![0u32, 3], vec![1, 4], vec![2, 3], vec![2, 4]];
        for nodes in [1, 3, 5] {
            // One thread per node: both kernels then accumulate each
            // node's rows in ascending order and merge partials in
            // partition order, so the statistics are bit-for-bit equal.
            let mut cfg = fast_config(nodes);
            cfg.threads_per_node = 1;
            let fused = SimulatedCluster::new(cfg, &x, &e).evaluate_slices(
                &slices,
                2,
                &ExecContext::serial(),
            );
            cfg.bitmap_kernel = true;
            let packed = SimulatedCluster::new(cfg, &x, &e).evaluate_slices(
                &slices,
                2,
                &ExecContext::serial(),
            );
            assert_eq!(packed, fused, "{nodes} nodes");
        }
    }

    #[test]
    fn partition_skew_recorded_in_telemetry() {
        let (x, e) = fixture();
        let cluster = SimulatedCluster::new(fast_config(3), &x, &e);
        let exec = ExecContext::serial();
        exec.enable_stats(true);
        exec.begin_level(2);
        cluster.evaluate_slices(&[vec![0, 3], vec![1, 4]], 2, &exec);
        let stats = exec.exec_stats();
        // skew = max/mean node wall time, so >= 1 whenever it was measured.
        let skew = stats.levels[0].partition_skew;
        assert!(skew >= 1.0, "skew {skew} should be >= 1 (max/mean)");
        assert!(stats.max_partition_skew() >= 1.0);
    }

    #[test]
    fn node_spans_emitted_when_tracing() {
        let (x, e) = fixture();
        let cluster = SimulatedCluster::new(fast_config(2), &x, &e);
        let exec = ExecContext::serial();
        exec.tracer().set_enabled(true);
        cluster.evaluate_slices(&[vec![0, 3]], 2, &exec);
        let events = exec.tracer().drain();
        let nodes = events.iter().filter(|ev| ev.name == "node.eval").count();
        assert_eq!(nodes, 2, "one span per node");
        assert!(events.iter().any(|ev| ev.name == "broadcast"));
        assert!(events.iter().any(|ev| ev.name == "aggregate"));
    }

    #[test]
    fn virtual_clock_accumulates_instead_of_sleeping() {
        let (x, e) = fixture();
        let mut cfg = fast_config(2);
        cfg.broadcast_latency = Duration::from_millis(250);
        cfg.aggregate_latency = Duration::from_millis(100);
        let cluster = SimulatedCluster::new(cfg, &x, &e);
        let exec = ExecContext::serial();
        let start = Instant::now();
        cluster.evaluate_slices(&[vec![0, 3]], 2, &exec);
        cluster.evaluate_slices(&[vec![1, 4]], 2, &exec);
        // 700 ms of modeled communication must be charged to the virtual
        // clock, not slept: the tiny fixture evaluates in microseconds.
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "modeled latency was slept, not accumulated"
        );
        let b = exec.metrics().gauge(VIRTUAL_BROADCAST_GAUGE).value();
        let a = exec.metrics().gauge(VIRTUAL_AGGREGATE_GAUGE).value();
        assert!(b >= 0.5, "broadcast virtual clock {b} < 0.5");
        assert!((a - 0.2).abs() < 1e-12, "aggregate virtual clock {a}");
    }

    #[test]
    fn empty_slices_no_work() {
        let (x, e) = fixture();
        let cluster = SimulatedCluster::new(fast_config(2), &x, &e);
        let (ss, se, sm) = cluster.evaluate_slices(&[], 2, &ExecContext::serial());
        assert!(ss.is_empty() && se.is_empty() && sm.is_empty());
    }

    #[test]
    fn partition_count_matches_nodes() {
        let (x, e) = fixture();
        let cluster = SimulatedCluster::new(fast_config(4), &x, &e);
        assert_eq!(cluster.data().num_partitions(), 4);
        assert_eq!(cluster.config().nodes, 4);
    }
}
