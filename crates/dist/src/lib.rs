//! # sliceline-dist
//!
//! Simulated distributed execution for the SliceLine reproduction.
//!
//! The paper's §5.4 scalability experiments (Fig. 7b) compare three
//! parallelization strategies on a 12-node Spark cluster:
//!
//! * **MT-Ops** — multi-threaded *operations*: each linear-algebra op is
//!   data-parallel internally but synchronizes (a barrier) before the
//!   next op.
//! * **MT-PFor** — multi-threaded *parallel-for over slices*: workers own
//!   disjoint slice ranges end-to-end, avoiding per-op barriers; the paper
//!   measures ~2× over MT-Ops from higher utilization.
//! * **Dist-PFor** — distributed slice evaluation: the slice matrix `S`
//!   is broadcast to every node, each node scans its row partition of `X`
//!   data-locally, and partial statistics are aggregated; the paper sees
//!   another ~1.9× from using all nodes, minus broadcast/aggregation
//!   overhead and a serial fraction.
//!
//! Real Spark is out of scope on a single machine, so [`cluster`]
//! reproduces the *structure*: nodes are thread groups over a
//! [`partition::PartitionedMatrix`], broadcasts copy `S` per node and pay
//! a configurable latency, and aggregation merges per-node partials after
//! a simulated shuffle latency. The strategy comparison shape (barriers
//! vs none; fan-out minus overhead) is preserved — absolute numbers are
//! not the point.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod partition;
pub mod strategy;

pub use cluster::{ClusterConfig, SimulatedCluster};
pub use partition::PartitionedMatrix;
pub use strategy::{evaluate_with_strategy, DistSliceLine, Strategy};
