//! # slicefinder-baseline
//!
//! Comparators for the SliceLine reproduction:
//!
//! * [`naive::NaiveEnumerator`] — a brute-force, provably exact top-K
//!   enumerator over the full slice lattice, used as the ground-truth
//!   oracle in property tests (SliceLine's headline claim is that its
//!   pruned enumeration is *exact*; the oracle is what that is checked
//!   against).
//! * [`lattice::SliceFinder`] — a reimplementation of the SliceFinder
//!   baseline (Chung et al., ICDE'19/TKDE'20) that the paper compares to
//!   in §5.4: a heuristic, level-wise lattice search ordered by
//!   "increasing number of literals, decreasing slice size", testing each
//!   slice for minimum effect size and statistical significance (Welch's
//!   t-test), terminating as soon as `K` slices have been recommended.
//!   It is *not* exact — which is exactly the gap SliceLine closes.
//! * [`tree::DecisionTreeSlicer`] — the decision-tree alternative the
//!   SliceFinder work proposed for *non-overlapping* slices: a greedy
//!   CART-style tree on the error signal whose worst leaves are read as
//!   slices.
//! * [`cluster::ClusterSlicer`] — SliceFinder's clustering alternative:
//!   k-modes clustering of the integer-coded rows, reporting the clusters
//!   with the highest mean error (descriptive, not a predicate
//!   conjunction — the mismatch the lattice approaches fix).
//! * [`stats`] — effect size and Welch's t-test on top of a hand-rolled
//!   Student-t CDF (regularized incomplete beta function).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod lattice;
pub mod naive;
pub mod stats;
pub mod tree;

pub use cluster::{ClusterSlicer, ClusterSlicerConfig};
pub use lattice::{SliceFinder, SliceFinderConfig, SliceFinderResult};
pub use naive::{NaiveEnumerator, NaiveSlice};
pub use tree::{DecisionTreeSlicer, LeafSlice, TreeConfig};
