//! Brute-force exact slice enumeration — the test oracle.
//!
//! Enumerates *every* valid slice of the lattice (conjunctions with at
//! most one predicate per feature) by depth-first search over features,
//! computing sizes and errors directly on row index sets. Exponential and
//! only usable on small inputs, but unarguably correct: property tests
//! assert that SliceLine's pruned enumeration returns exactly the same
//! top-K.

use sliceline_frame::IntMatrix;

/// A fully evaluated slice from the naive enumerator.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveSlice {
    /// `(feature, 1-based code)` pairs sorted by feature.
    pub predicates: Vec<(usize, u32)>,
    /// Number of matching rows.
    pub size: usize,
    /// Sum of matching rows' errors.
    pub error: f64,
    /// SliceLine score (Definition 1).
    pub score: f64,
}

/// Brute-force enumerator configuration and entry point.
#[derive(Debug, Clone)]
pub struct NaiveEnumerator {
    /// Top-K size.
    pub k: usize,
    /// Minimum support σ.
    pub sigma: usize,
    /// Scoring weight α.
    pub alpha: f64,
    /// Maximum number of predicates per slice (`⌈L⌉`).
    pub max_level: usize,
}

impl NaiveEnumerator {
    /// Creates an enumerator with the given parameters.
    pub fn new(k: usize, sigma: usize, alpha: f64, max_level: usize) -> Self {
        NaiveEnumerator {
            k,
            sigma,
            alpha,
            max_level,
        }
    }

    /// Enumerates all slices satisfying `|S| ≥ σ ∧ sc > 0` and returns the
    /// top-K by score (descending; ties broken by fewer predicates, then
    /// lexicographic predicates for determinism).
    pub fn top_k(&self, x0: &IntMatrix, errors: &[f64]) -> Vec<NaiveSlice> {
        assert_eq!(x0.rows(), errors.len(), "X0 and errors must be row-aligned");
        let n = x0.rows();
        let total_error: f64 = errors.iter().sum();
        let avg_error = if n > 0 { total_error / n as f64 } else { 0.0 };
        let mut results: Vec<NaiveSlice> = Vec::new();
        if n == 0 || total_error <= 0.0 {
            return results;
        }
        let all_rows: Vec<usize> = (0..n).collect();
        let mut predicates: Vec<(usize, u32)> = Vec::new();
        self.dfs(
            x0,
            errors,
            0,
            &all_rows,
            &mut predicates,
            n as f64,
            avg_error,
            &mut results,
        );
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.predicates.len().cmp(&b.predicates.len()))
                .then(a.predicates.cmp(&b.predicates))
        });
        results.truncate(self.k);
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        x0: &IntMatrix,
        errors: &[f64],
        next_feature: usize,
        rows: &[usize],
        predicates: &mut Vec<(usize, u32)>,
        n: f64,
        avg_error: f64,
        results: &mut Vec<NaiveSlice>,
    ) {
        if !predicates.is_empty() {
            let size = rows.len();
            // Monotone: all descendants are no larger — safe exact cut.
            if size < self.sigma {
                return;
            }
            let error: f64 = rows.iter().map(|&r| errors[r]).sum();
            let score = self.score(n, avg_error, size as f64, error);
            if score > 0.0 {
                results.push(NaiveSlice {
                    predicates: predicates.clone(),
                    size,
                    error,
                    score,
                });
            }
        }
        if predicates.len() >= self.max_level {
            return;
        }
        for j in next_feature..x0.cols() {
            for code in 1..=x0.domains()[j] {
                let sub: Vec<usize> = rows
                    .iter()
                    .copied()
                    .filter(|&r| x0.get(r, j) == code)
                    .collect();
                if sub.len() < self.sigma {
                    continue;
                }
                predicates.push((j, code));
                self.dfs(x0, errors, j + 1, &sub, predicates, n, avg_error, results);
                predicates.pop();
            }
        }
    }

    fn score(&self, n: f64, avg_error: f64, size: f64, error: f64) -> f64 {
        if size <= 0.0 || avg_error <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let rel = (error / size) / avg_error;
        self.alpha * (rel - 1.0) - (1.0 - self.alpha) * (n / size - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (IntMatrix, Vec<f64>) {
        // 8 rows, 2 features with domains 2 and 2.
        let rows: Vec<Vec<u32>> = (0..8u32)
            .map(|i| vec![1 + (i % 2), 1 + ((i / 2) % 2)])
            .collect();
        let errors: Vec<f64> = (0..8).map(|i| if i % 4 == 0 { 1.0 } else { 0.1 }).collect();
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    #[test]
    fn finds_highest_error_conjunction() {
        let (x0, e) = fixture();
        // Rows 0 and 4 (f0=1, f1=1) carry error 1.0.
        let top = NaiveEnumerator::new(3, 1, 0.95, 2).top_k(&x0, &e);
        assert!(!top.is_empty());
        assert_eq!(top[0].predicates, vec![(0, 1), (1, 1)]);
        assert_eq!(top[0].size, 2);
        assert!((top[0].error - 2.0).abs() < 1e-12);
    }

    #[test]
    fn respects_sigma() {
        let (x0, e) = fixture();
        let top = NaiveEnumerator::new(10, 3, 0.95, 2).top_k(&x0, &e);
        assert!(top.iter().all(|s| s.size >= 3));
    }

    #[test]
    fn respects_max_level() {
        let (x0, e) = fixture();
        let top = NaiveEnumerator::new(10, 1, 0.95, 1).top_k(&x0, &e);
        assert!(top.iter().all(|s| s.predicates.len() == 1));
    }

    #[test]
    fn zero_error_returns_empty() {
        let (x0, _) = fixture();
        let top = NaiveEnumerator::new(5, 1, 0.95, 2).top_k(&x0, &[0.0; 8]);
        assert!(top.is_empty());
    }

    #[test]
    fn scores_sorted_descending() {
        let (x0, e) = fixture();
        let top = NaiveEnumerator::new(10, 1, 0.95, 2).top_k(&x0, &e);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // All returned slices satisfy the constraints.
        assert!(top.iter().all(|s| s.score > 0.0));
    }

    #[test]
    #[should_panic(expected = "row-aligned")]
    fn misaligned_errors_panic() {
        let (x0, _) = fixture();
        NaiveEnumerator::new(1, 1, 0.95, 2).top_k(&x0, &[1.0]);
    }
}
