//! The SliceFinder baseline: heuristic, level-wise lattice search.
//!
//! Reimplemented from the published description (Chung et al.): slices are
//! explored by "increasing number of literals, decreasing slice size"; a
//! slice is *recommended* when its effect size against the complement
//! exceeds a threshold `T` and Welch's t-test finds its errors
//! significantly larger; recommended slices are not refined further (the
//! dominance constraint); the search terminates at the end of the first
//! level where `K` recommendations have accumulated.
//!
//! This is the queue-based, task-parallel design the paper contrasts with:
//! it returns *plausible* slices quickly but offers no guarantee of
//! finding the true top-K — SliceLine's exactness is the improvement.

use crate::stats::{effect_size, moments, welch_t_test, Moments};
use sliceline_frame::IntMatrix;

/// Configuration for the SliceFinder baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceFinderConfig {
    /// Number of slices to recommend.
    pub k: usize,
    /// Minimum slice size.
    pub min_size: usize,
    /// Minimum effect size `T` (the original work suggests ~0.3).
    pub effect_size_threshold: f64,
    /// Significance level for Welch's t-test.
    pub significance: f64,
    /// Maximum number of literals per slice.
    pub max_level: usize,
    /// Worker threads for per-level slice testing.
    pub threads: usize,
}

impl Default for SliceFinderConfig {
    fn default() -> Self {
        SliceFinderConfig {
            k: 4,
            min_size: 32,
            effect_size_threshold: 0.3,
            significance: 0.05,
            max_level: 3,
            threads: 1,
        }
    }
}

/// A recommended slice.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendedSlice {
    /// `(feature, 1-based code)` pairs sorted by feature.
    pub predicates: Vec<(usize, u32)>,
    /// Number of matching rows.
    pub size: usize,
    /// Mean error within the slice.
    pub mean_error: f64,
    /// Effect size against the complement.
    pub effect_size: f64,
    /// One-sided Welch p-value.
    pub p_value: f64,
}

/// Search outcome: recommendations plus exploration counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceFinderResult {
    /// Recommended slices in discovery order (level asc, size desc).
    pub recommended: Vec<RecommendedSlice>,
    /// Slices tested per level.
    pub tested_per_level: Vec<usize>,
}

/// The SliceFinder baseline searcher.
#[derive(Debug, Clone)]
pub struct SliceFinder {
    config: SliceFinderConfig,
}

struct Candidate {
    predicates: Vec<(usize, u32)>,
    rows: Vec<u32>,
}

impl SliceFinder {
    /// Creates a searcher with the given configuration.
    pub fn new(config: SliceFinderConfig) -> Self {
        SliceFinder { config }
    }

    /// Runs the level-wise search on integer-encoded features and errors.
    pub fn find_slices(&self, x0: &IntMatrix, errors: &[f64]) -> SliceFinderResult {
        assert_eq!(x0.rows(), errors.len(), "X0 and errors must be row-aligned");
        let cfg = &self.config;
        let overall = moments(errors);
        let mut recommended: Vec<RecommendedSlice> = Vec::new();
        let mut tested_per_level = Vec::new();
        // Level 1 candidates: every (feature, value) pair.
        let mut frontier: Vec<Candidate> = Vec::new();
        for j in 0..x0.cols() {
            for code in 1..=x0.domains()[j] {
                let rows: Vec<u32> = (0..x0.rows())
                    .filter(|&r| x0.get(r, j) == code)
                    .map(|r| r as u32)
                    .collect();
                if rows.len() >= cfg.min_size {
                    frontier.push(Candidate {
                        predicates: vec![(j, code)],
                        rows,
                    });
                }
            }
        }
        let mut level = 1usize;
        while !frontier.is_empty() && level <= cfg.max_level {
            // Decreasing slice size within the level.
            frontier.sort_by_key(|c| std::cmp::Reverse(c.rows.len()));
            tested_per_level.push(frontier.len());
            let verdicts = self.test_level(&frontier, errors, &overall);
            let mut expand: Vec<Candidate> = Vec::new();
            for (cand, verdict) in frontier.into_iter().zip(verdicts) {
                match verdict {
                    Some(rec) => recommended.push(rec),
                    None => expand.push(cand),
                }
            }
            // Level-wise termination: stop once K found at a level border.
            if recommended.len() >= cfg.k || level == cfg.max_level {
                break;
            }
            frontier = self.expand(&expand, x0);
            level += 1;
        }
        recommended.truncate(cfg.k);
        SliceFinderResult {
            recommended,
            tested_per_level,
        }
    }

    /// Tests every candidate of a level (task-parallel over chunks).
    fn test_level(
        &self,
        frontier: &[Candidate],
        errors: &[f64],
        overall: &Moments,
    ) -> Vec<Option<RecommendedSlice>> {
        let cfg = &self.config;
        let test_one = |cand: &Candidate| -> Option<RecommendedSlice> {
            let slice_errors: Vec<f64> = cand.rows.iter().map(|&r| errors[r as usize]).collect();
            let s = moments(&slice_errors);
            // Complement moments derived from totals (avoids a second scan).
            let rest_n = overall.n - s.n;
            if rest_n < 2 || s.n < 2 {
                return None;
            }
            let rest_sum = overall.mean * overall.n as f64 - s.mean * s.n as f64;
            let rest_mean = rest_sum / rest_n as f64;
            // Var of complement via sum of squares decomposition.
            let total_ss = overall.var * (overall.n as f64 - 1.0)
                + overall.n as f64 * overall.mean * overall.mean;
            let slice_ss = s.var * (s.n as f64 - 1.0) + s.n as f64 * s.mean * s.mean;
            let rest_ss = total_ss - slice_ss;
            let rest_var = ((rest_ss - rest_n as f64 * rest_mean * rest_mean)
                / (rest_n as f64 - 1.0))
                .max(0.0);
            let rest = Moments {
                n: rest_n,
                mean: rest_mean,
                var: rest_var,
            };
            let d = effect_size(&s, &rest);
            if d < cfg.effect_size_threshold {
                return None;
            }
            let w = welch_t_test(&s, &rest);
            if w.p_value >= cfg.significance {
                return None;
            }
            Some(RecommendedSlice {
                predicates: cand.predicates.clone(),
                size: s.n,
                mean_error: s.mean,
                effect_size: d,
                p_value: w.p_value,
            })
        };
        if cfg.threads <= 1 || frontier.len() < 2 {
            return frontier.iter().map(test_one).collect();
        }
        let chunk = frontier.len().div_ceil(cfg.threads);
        let mut out: Vec<Option<RecommendedSlice>> = Vec::with_capacity(frontier.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(test_one).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("worker panicked"));
            }
        });
        out
    }

    /// Expands non-recommended candidates by appending predicates on
    /// later features (Apriori-style prefix extension avoids duplicates).
    fn expand(&self, parents: &[Candidate], x0: &IntMatrix) -> Vec<Candidate> {
        let cfg = &self.config;
        let mut out = Vec::new();
        for cand in parents {
            let last_feature = cand.predicates.last().map(|&(j, _)| j).unwrap_or(0);
            for j in (last_feature + 1)..x0.cols() {
                for code in 1..=x0.domains()[j] {
                    let rows: Vec<u32> = cand
                        .rows
                        .iter()
                        .copied()
                        .filter(|&r| x0.get(r as usize, j) == code)
                        .collect();
                    if rows.len() >= cfg.min_size {
                        let mut predicates = cand.predicates.clone();
                        predicates.push((j, code));
                        out.push(Candidate { predicates, rows });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 200 rows; slice (f0=1, f1=1) has strongly elevated errors.
    fn fixture() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..200u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 2);
            let f2 = 1 + ((i / 4) % 5);
            rows.push(vec![f0, f1, f2]);
            let bad = f0 == 1 && f1 == 1;
            errors.push(if bad {
                1.0 + (i % 3) as f64 * 0.1
            } else {
                0.1 + (i % 3) as f64 * 0.05
            });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    fn config() -> SliceFinderConfig {
        SliceFinderConfig {
            k: 3,
            min_size: 5,
            effect_size_threshold: 0.3,
            significance: 0.05,
            max_level: 3,
            threads: 1,
        }
    }

    #[test]
    fn recommends_high_error_slices() {
        let (x0, e) = fixture();
        let r = SliceFinder::new(config()).find_slices(&x0, &e);
        assert!(!r.recommended.is_empty());
        // The planted predicates appear among the recommendations (the
        // 1-literal projections f0=1 / f1=1 are already significant).
        let has_planted_component = r
            .recommended
            .iter()
            .any(|s| s.predicates.contains(&(0, 1)) || s.predicates.contains(&(1, 1)));
        assert!(has_planted_component, "got {:?}", r.recommended);
        for s in &r.recommended {
            assert!(s.effect_size >= 0.3);
            assert!(s.p_value < 0.05);
            assert!(s.size >= 5);
        }
    }

    #[test]
    fn terminates_at_level_boundary_once_k_found() {
        let (x0, e) = fixture();
        let r = SliceFinder::new(config()).find_slices(&x0, &e);
        assert!(r.recommended.len() <= 3);
        assert!(!r.tested_per_level.is_empty());
    }

    #[test]
    fn respects_min_size() {
        let (x0, e) = fixture();
        let mut cfg = config();
        cfg.min_size = 60;
        let r = SliceFinder::new(cfg).find_slices(&x0, &e);
        assert!(r.recommended.iter().all(|s| s.size >= 60));
    }

    #[test]
    fn parallel_matches_serial() {
        let (x0, e) = fixture();
        let serial = SliceFinder::new(config()).find_slices(&x0, &e);
        let mut cfg = config();
        cfg.threads = 4;
        let parallel = SliceFinder::new(cfg).find_slices(&x0, &e);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uniform_errors_give_no_recommendations() {
        let (x0, _) = fixture();
        let e = vec![0.5; 200];
        let r = SliceFinder::new(config()).find_slices(&x0, &e);
        assert!(r.recommended.is_empty());
    }

    #[test]
    fn max_level_bounds_search() {
        let (x0, e) = fixture();
        let mut cfg = config();
        cfg.max_level = 1;
        cfg.effect_size_threshold = 10.0; // nothing recommended
        let r = SliceFinder::new(cfg).find_slices(&x0, &e);
        assert_eq!(r.tested_per_level.len(), 1);
        assert!(r.recommended.is_empty());
    }
}
