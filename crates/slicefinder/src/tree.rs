//! Decision-tree slicer: the non-overlapping alternative to slice finding.
//!
//! SliceFinder (and the SliceLine paper's introduction) contrast lattice
//! search with decision trees, which partition the data into
//! *non-overlapping* slices: train a tree on the error signal, then read
//! the highest-error leaves as slices. The limitation this baseline makes
//! visible is exactly the paper's motivation — a greedy, axis-aligned
//! partition cannot represent overlapping slices and often splits a
//! problematic conjunction across branches.
//!
//! The tree greedily splits on equality predicates `F_j = v` (matching the
//! slice definition language) to maximize the reduction in error variance
//! (CART-style), bounded by depth and minimum leaf size.

use sliceline_frame::IntMatrix;

/// Configuration for [`DecisionTreeSlicer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (= maximum predicates per slice).
    pub max_depth: usize,
    /// Minimum rows per leaf (the σ analog).
    pub min_leaf: usize,
    /// Number of worst leaves to report.
    pub k: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_leaf: 32,
            k: 4,
        }
    }
}

/// A leaf reported as a slice.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSlice {
    /// `(feature, code, equals)` path predicates: `equals == true` means
    /// `F_j = code`, `false` means `F_j ≠ code` (trees need negations,
    /// which the slice language cannot express — part of the baseline's
    /// mismatch).
    pub path: Vec<(usize, u32, bool)>,
    /// Rows in the leaf.
    pub size: usize,
    /// Mean error in the leaf.
    pub mean_error: f64,
}

/// Greedy decision tree over equality predicates on integer features.
///
/// ```
/// use slicefinder_baseline::{DecisionTreeSlicer, TreeConfig};
/// use sliceline_frame::IntMatrix;
///
/// let rows: Vec<Vec<u32>> = (0..40).map(|i| vec![1 + i % 2, 1 + (i / 2) % 2]).collect();
/// let errors: Vec<f64> = (0..40).map(|i| if i % 4 == 0 { 1.0 } else { 0.1 }).collect();
/// let x0 = IntMatrix::from_rows(&rows).unwrap();
/// let leaves = DecisionTreeSlicer::new(TreeConfig { max_depth: 2, min_leaf: 5, k: 2 })
///     .worst_leaves(&x0, &errors);
/// assert!(leaves[0].mean_error > leaves[1].mean_error);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTreeSlicer {
    config: TreeConfig,
}

impl DecisionTreeSlicer {
    /// Creates a slicer with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeSlicer { config }
    }

    /// Builds the tree on `(x0, errors)` and returns the `k` leaves with
    /// the highest mean error (each leaf at least `min_leaf` rows).
    pub fn worst_leaves(&self, x0: &IntMatrix, errors: &[f64]) -> Vec<LeafSlice> {
        assert_eq!(x0.rows(), errors.len(), "X0 and errors must be row-aligned");
        let rows: Vec<u32> = (0..x0.rows() as u32).collect();
        let mut leaves = Vec::new();
        let mut path = Vec::new();
        self.split(x0, errors, &rows, 0, &mut path, &mut leaves);
        leaves.sort_by(|a, b| b.mean_error.partial_cmp(&a.mean_error).unwrap());
        leaves.truncate(self.config.k);
        leaves
    }

    fn split(
        &self,
        x0: &IntMatrix,
        errors: &[f64],
        rows: &[u32],
        depth: usize,
        path: &mut Vec<(usize, u32, bool)>,
        leaves: &mut Vec<LeafSlice>,
    ) {
        let emit = |path: &[(usize, u32, bool)], rows: &[u32], leaves: &mut Vec<LeafSlice>| {
            if rows.is_empty() {
                return;
            }
            let sum: f64 = rows.iter().map(|&r| errors[r as usize]).sum();
            leaves.push(LeafSlice {
                path: path.to_vec(),
                size: rows.len(),
                mean_error: sum / rows.len() as f64,
            });
        };
        if depth >= self.config.max_depth || rows.len() < 2 * self.config.min_leaf {
            emit(path, rows, leaves);
            return;
        }
        // Find the equality split maximizing the variance reduction of the
        // error signal (equivalently, maximizing the between-group sum of
        // squares of the binary partition).
        let total: f64 = rows.iter().map(|&r| errors[r as usize]).sum();
        let n = rows.len() as f64;
        let mut best: Option<(usize, u32, f64)> = None;
        for j in 0..x0.cols() {
            // Per-code sums and counts within this node.
            let d = x0.domains()[j] as usize;
            let mut sums = vec![0.0f64; d];
            let mut counts = vec![0usize; d];
            for &r in rows {
                let code = x0.get(r as usize, j) as usize - 1;
                sums[code] += errors[r as usize];
                counts[code] += 1;
            }
            for code in 0..d {
                let c = counts[code];
                if c < self.config.min_leaf || rows.len() - c < self.config.min_leaf {
                    continue;
                }
                let c = c as f64;
                let rest = n - c;
                let mean_in = sums[code] / c;
                let mean_out = (total - sums[code]) / rest;
                // Between-group sum of squares.
                let overall = total / n;
                let gain = c * (mean_in - overall).powi(2) + rest * (mean_out - overall).powi(2);
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((j, code as u32 + 1, gain));
                }
            }
        }
        let Some((j, code, gain)) = best else {
            emit(path, rows, leaves);
            return;
        };
        if gain <= 1e-12 {
            emit(path, rows, leaves);
            return;
        }
        let (inside, outside): (Vec<u32>, Vec<u32>) =
            rows.iter().partition(|&&r| x0.get(r as usize, j) == code);
        path.push((j, code, true));
        self.split(x0, errors, &inside, depth + 1, path, leaves);
        path.pop();
        path.push((j, code, false));
        self.split(x0, errors, &outside, depth + 1, path, leaves);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 160 rows; (f0=1, f1=2) has high errors.
    fn fixture() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..160u32 {
            let f0 = 1 + (i % 2);
            let f1 = 1 + ((i / 2) % 4);
            rows.push(vec![f0, f1]);
            errors.push(if f0 == 1 && f1 == 2 { 1.0 } else { 0.1 });
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    #[test]
    fn finds_high_error_leaf() {
        let (x0, e) = fixture();
        let leaves = DecisionTreeSlicer::new(TreeConfig {
            max_depth: 3,
            min_leaf: 10,
            k: 3,
        })
        .worst_leaves(&x0, &e);
        assert!(!leaves.is_empty());
        let top = &leaves[0];
        assert!(top.mean_error > 0.9, "worst leaf mean {}", top.mean_error);
        // The worst leaf pins both planted predicates; on the binary
        // feature f0 the tree may express `f0 = 1` as `f0 ≠ 2` (the same
        // partition), so accept either form.
        let has_f0 = top
            .path
            .iter()
            .any(|&(j, c, eq)| j == 0 && ((c == 1 && eq) || (c == 2 && !eq)));
        let has_f1 = top.path.iter().any(|&(j, c, eq)| j == 1 && c == 2 && eq);
        assert!(has_f0 && has_f1, "path {:?}", top.path);
    }

    #[test]
    fn leaves_partition_rows() {
        let (x0, e) = fixture();
        let slicer = DecisionTreeSlicer::new(TreeConfig {
            max_depth: 2,
            min_leaf: 10,
            k: 100,
        });
        let leaves = slicer.worst_leaves(&x0, &e);
        // Non-overlapping: total size equals n.
        let total: usize = leaves.iter().map(|l| l.size).sum();
        assert_eq!(total, 160);
        for l in &leaves {
            assert!(l.size >= 10);
        }
    }

    #[test]
    fn depth_zero_returns_root() {
        let (x0, e) = fixture();
        let leaves = DecisionTreeSlicer::new(TreeConfig {
            max_depth: 0,
            min_leaf: 1,
            k: 5,
        })
        .worst_leaves(&x0, &e);
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].size, 160);
        assert!(leaves[0].path.is_empty());
    }

    #[test]
    fn constant_errors_stop_splitting() {
        let (x0, _) = fixture();
        let leaves =
            DecisionTreeSlicer::new(TreeConfig::default()).worst_leaves(&x0, &vec![0.5; 160]);
        assert_eq!(leaves.len(), 1, "no informative split must exist");
    }

    #[test]
    #[should_panic(expected = "row-aligned")]
    fn misaligned_panics() {
        let (x0, _) = fixture();
        DecisionTreeSlicer::new(TreeConfig::default()).worst_leaves(&x0, &[1.0]);
    }
}
