//! Clustering slicer: SliceFinder's clustering alternative.
//!
//! K-modes clustering over the integer-coded rows (Hamming distance,
//! per-feature mode centroids); the clusters with the highest mean error
//! are reported as "problematic regions". Clusters are descriptive — a
//! centroid is not a predicate conjunction, and cluster membership cannot
//! be expressed in the slice language. That interpretability gap is the
//! reason both SliceFinder and SliceLine moved to lattice search; this
//! baseline exists to make the comparison concrete.

use sliceline_frame::IntMatrix;

/// Configuration for [`ClusterSlicer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSlicerConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Lloyd-style iterations.
    pub iterations: usize,
    /// Number of worst clusters to report.
    pub k: usize,
    /// Deterministic seed for centroid initialization.
    pub seed: u64,
}

impl Default for ClusterSlicerConfig {
    fn default() -> Self {
        ClusterSlicerConfig {
            clusters: 8,
            iterations: 10,
            k: 4,
            seed: 17,
        }
    }
}

/// A cluster reported as a problematic region.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRegion {
    /// Per-feature modal code of the cluster (its centroid).
    pub centroid: Vec<u32>,
    /// Rows assigned to the cluster.
    pub size: usize,
    /// Mean error over the cluster.
    pub mean_error: f64,
}

/// K-modes clustering over integer-coded rows.
#[derive(Debug, Clone)]
pub struct ClusterSlicer {
    config: ClusterSlicerConfig,
}

impl ClusterSlicer {
    /// Creates a slicer with the given configuration.
    pub fn new(config: ClusterSlicerConfig) -> Self {
        ClusterSlicer { config }
    }

    /// Clusters the rows and returns the `k` clusters with the highest
    /// mean error.
    pub fn worst_clusters(&self, x0: &IntMatrix, errors: &[f64]) -> Vec<ClusterRegion> {
        assert_eq!(x0.rows(), errors.len(), "X0 and errors must be row-aligned");
        let n = x0.rows();
        let m = x0.cols();
        let kc = self.config.clusters.min(n).max(1);
        // Deterministic spread-out initialization: rows at strided
        // positions mixed with the seed.
        let mut centroids: Vec<Vec<u32>> = (0..kc)
            .map(|c| {
                let r = ((c as u64 * 0x9E37_79B9 + self.config.seed) % n as u64) as usize;
                x0.row(r).to_vec()
            })
            .collect();
        let mut assign = vec![0usize; n];
        for _ in 0..self.config.iterations {
            // Assign to nearest centroid by Hamming distance.
            for (r, a) in assign.iter_mut().enumerate() {
                let row = x0.row(r);
                let mut best = 0usize;
                let mut best_d = usize::MAX;
                for (c, cent) in centroids.iter().enumerate() {
                    let d = hamming(row, cent);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                *a = best;
            }
            // Update centroids to per-feature modes.
            let mut changed = false;
            for (c, cent) in centroids.iter_mut().enumerate() {
                for j in 0..m {
                    let d = x0.domains()[j] as usize;
                    let mut counts = vec![0usize; d];
                    for (r, &a) in assign.iter().enumerate() {
                        if a == c {
                            counts[x0.get(r, j) as usize - 1] += 1;
                        }
                    }
                    if let Some((mode, &cnt)) = counts.iter().enumerate().max_by_key(|&(_, &v)| v) {
                        if cnt > 0 {
                            let new_code = mode as u32 + 1;
                            if cent[j] != new_code {
                                cent[j] = new_code;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Score clusters.
        let mut regions: Vec<ClusterRegion> = Vec::with_capacity(kc);
        for (c, cent) in centroids.iter().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&r| assign[r] == c).collect();
            if members.is_empty() {
                continue;
            }
            let sum: f64 = members.iter().map(|&r| errors[r]).sum();
            regions.push(ClusterRegion {
                centroid: cent.clone(),
                size: members.len(),
                mean_error: sum / members.len() as f64,
            });
        }
        regions.sort_by(|a, b| b.mean_error.partial_cmp(&a.mean_error).unwrap());
        regions.truncate(self.config.k);
        regions
    }
}

fn hamming(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated row populations; population B has high errors.
    fn fixture() -> (IntMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for i in 0..120u32 {
            if i % 3 == 0 {
                rows.push(vec![2, 2, 2, 2]);
                errors.push(1.0);
            } else {
                rows.push(vec![1, 1, 1, 1 + (i % 2)]);
                errors.push(0.1);
            }
        }
        (IntMatrix::from_rows(&rows).unwrap(), errors)
    }

    #[test]
    fn separates_error_population() {
        let (x0, e) = fixture();
        let regions = ClusterSlicer::new(ClusterSlicerConfig {
            clusters: 4,
            iterations: 10,
            k: 2,
            seed: 3,
        })
        .worst_clusters(&x0, &e);
        assert!(!regions.is_empty());
        let top = &regions[0];
        assert!(top.mean_error > 0.8, "top cluster mean {}", top.mean_error);
        assert_eq!(top.centroid, vec![2, 2, 2, 2]);
    }

    #[test]
    fn cluster_sizes_partition() {
        let (x0, e) = fixture();
        let regions = ClusterSlicer::new(ClusterSlicerConfig {
            clusters: 3,
            iterations: 5,
            k: 10,
            seed: 1,
        })
        .worst_clusters(&x0, &e);
        let total: usize = regions.iter().map(|r| r.size).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn deterministic_for_seed() {
        let (x0, e) = fixture();
        let cfg = ClusterSlicerConfig::default();
        let a = ClusterSlicer::new(cfg).worst_clusters(&x0, &e);
        let b = ClusterSlicer::new(cfg).worst_clusters(&x0, &e);
        assert_eq!(a, b);
    }

    #[test]
    fn single_cluster_is_whole_dataset() {
        let (x0, e) = fixture();
        let regions = ClusterSlicer::new(ClusterSlicerConfig {
            clusters: 1,
            iterations: 3,
            k: 5,
            seed: 9,
        })
        .worst_clusters(&x0, &e);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].size, 120);
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(hamming(&[1, 2, 3], &[3, 2, 1]), 2);
    }
}
