//! Statistical machinery for the SliceFinder baseline: effect size and
//! Welch's t-test, on top of a hand-rolled Student-t CDF.
//!
//! SliceFinder recommends a slice `S` when (1) the *effect size* between
//! the error distributions of `S` and `¬S` exceeds a threshold `T`, and
//! (2) Welch's t-test rejects the hypothesis that `S`'s errors are not
//! larger than `¬S`'s. Both are implemented here from their definitions;
//! the t CDF uses the regularized incomplete beta function evaluated with
//! Lentz's continued fraction.

/// Mean and (sample) variance of a slice's error values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of values.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub var: f64,
}

/// Computes count, mean, and unbiased sample variance.
pub fn moments(values: &[f64]) -> Moments {
    let n = values.len();
    if n == 0 {
        return Moments {
            n: 0,
            mean: 0.0,
            var: 0.0,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)
    };
    Moments { n, mean, var }
}

/// Cohen's-d style effect size between the slice and its complement:
/// `(mean_S − mean_notS) / pooled_std`. Returns 0 when the pooled
/// standard deviation vanishes.
pub fn effect_size(slice: &Moments, rest: &Moments) -> f64 {
    if slice.n < 2 || rest.n < 2 {
        return 0.0;
    }
    let pooled = (((slice.n - 1) as f64 * slice.var + (rest.n - 1) as f64 * rest.var)
        / ((slice.n + rest.n - 2) as f64))
        .sqrt();
    if pooled <= 0.0 {
        return 0.0;
    }
    (slice.mean - rest.mean) / pooled
}

/// Result of Welch's one-sided t-test (H1: slice mean > rest mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// One-sided p-value `P(T ≥ t)`.
    pub p_value: f64,
}

/// Welch's t-test for "slice errors are larger than the rest".
///
/// Degenerate inputs (fewer than 2 samples on either side, or zero
/// variance on both) yield `p_value = 1.0` (no evidence).
pub fn welch_t_test(slice: &Moments, rest: &Moments) -> WelchResult {
    if slice.n < 2 || rest.n < 2 {
        return WelchResult {
            t: 0.0,
            df: 1.0,
            p_value: 1.0,
        };
    }
    let va = slice.var / slice.n as f64;
    let vb = rest.var / rest.n as f64;
    let denom = (va + vb).sqrt();
    if denom <= 0.0 {
        // Equal constants on both sides: direction decides.
        let p = if slice.mean > rest.mean { 0.0 } else { 1.0 };
        return WelchResult {
            t: if slice.mean > rest.mean {
                f64::INFINITY
            } else {
                0.0
            },
            df: 1.0,
            p_value: p,
        };
    }
    let t = (slice.mean - rest.mean) / denom;
    let df = (va + vb) * (va + vb)
        / (va * va / (slice.n as f64 - 1.0) + vb * vb / (rest.n as f64 - 1.0));
    let p_value = 1.0 - student_t_cdf(t, df);
    WelchResult { t, df, p_value }
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// Uses the identity `P(T ≤ t) = 1 − I_x(df/2, 1/2) / 2` for `t ≥ 0` with
/// `x = df / (df + t²)`, where `I` is the regularized incomplete beta
/// function.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (Numerical Recipes style).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_basic() {
        let m = moments(&[1.0, 2.0, 3.0]);
        assert_eq!(m.n, 3);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.var - 1.0).abs() < 1e-12);
        let empty = moments(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(moments(&[5.0]).var, 0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_bounds_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution CDF).
        for x in [0.1, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = incomplete_beta(2.5, 4.0, 0.3);
        let w = 1.0 - incomplete_beta(4.0, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }

    #[test]
    fn student_t_cdf_known_values() {
        // Symmetric around 0.
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-10);
        // t=1, df=1 (Cauchy): CDF = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-8);
        // Large df approaches the normal: Φ(1.96) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 1e-3);
        // Monotone in t.
        assert!(student_t_cdf(2.0, 7.0) > student_t_cdf(1.0, 7.0));
        assert_eq!(student_t_cdf(f64::INFINITY, 5.0), 1.0);
        assert_eq!(student_t_cdf(f64::NEG_INFINITY, 5.0), 0.0);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let high: Vec<f64> = (0..30).map(|i| 5.0 + (i % 3) as f64 * 0.1).collect();
        let low: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64 * 0.1).collect();
        let r = welch_t_test(&moments(&high), &moments(&low));
        assert!(r.t > 10.0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn welch_no_difference_high_p() {
        let a: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let r = welch_t_test(&moments(&a), &moments(&a));
        assert!((r.t).abs() < 1e-12);
        assert!(r.p_value > 0.49);
    }

    #[test]
    fn welch_degenerate_inputs() {
        let one = moments(&[1.0]);
        let many = moments(&[1.0, 2.0, 3.0]);
        assert_eq!(welch_t_test(&one, &many).p_value, 1.0);
        // Zero variance both sides, higher mean -> p = 0.
        let hi = moments(&[2.0, 2.0, 2.0]);
        let lo = moments(&[1.0, 1.0, 1.0]);
        assert_eq!(welch_t_test(&hi, &lo).p_value, 0.0);
        assert_eq!(welch_t_test(&lo, &hi).p_value, 1.0);
    }

    #[test]
    fn effect_size_direction_and_scale() {
        let hi = moments(&[3.0, 3.1, 2.9, 3.0]);
        let lo = moments(&[1.0, 1.1, 0.9, 1.0]);
        let d = effect_size(&hi, &lo);
        assert!(d > 5.0, "strong separation should give large d, got {d}");
        assert!(effect_size(&lo, &hi) < 0.0);
        assert_eq!(effect_size(&moments(&[1.0]), &lo), 0.0);
        // Identical constant distributions: zero pooled std -> 0.
        let c = moments(&[1.0, 1.0]);
        assert_eq!(effect_size(&c, &c), 0.0);
    }
}
