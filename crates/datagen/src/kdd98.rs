//! KDD 98-shaped generator: `n ≈ 95,412` (base scaled down), `m = 469`,
//! `l = 8,378`, regression.
//!
//! KDD 98's signature (§5.2, Fig. 4b) is *many features*: 469 columns
//! yield thousands of qualifying basic slices, so even level 2 joins a
//! large candidate set. Domains are heavy-tailed (many small categorical
//! codes, a few wide ones) summing to 8,378 one-hot columns, and errors
//! are squared-loss-like.

use crate::synth::{
    regression_errors, sample_matrix, CorrelatedSampler, Dataset, GenConfig, PlantedSlice, Task,
};
use sliceline_frame::FeatureSet;

/// Base row count before scaling (0.1× the real 95,412).
const BASE_ROWS: usize = 9_541;

/// Deterministic heavy-tailed domain sizes for 469 features summing to
/// 8,378 one-hot columns: a repeating pattern of small domains with
/// periodic wide ones, adjusted to hit the exact total.
pub fn domains() -> Vec<u32> {
    let m = 469usize;
    let target = 8_378u32;
    // Minimum domain ~10: KDD98's recoded/binned features; the absence of
    // tiny domains keeps any single feature value's share of a planted
    // error mass below the score-pruning cut (see the planted-slice
    // commentary in `kdd98_like`).
    let mut d: Vec<u32> = (0..m)
        .map(|j| match j % 12 {
            0 => 44,     // wide recoded categoricals
            1 | 2 => 26, // medium
            3..=6 => 15, // binned continuous
            _ => 13,     // small categoricals
        })
        .collect();
    adjust_to_target(&mut d, target);
    d
}

/// Cycles +1/−1 adjustments over the domain vector until it sums exactly
/// to `target` (never dropping a domain below 2).
pub(crate) fn adjust_to_target(d: &mut [u32], target: u32) {
    loop {
        let sum: u32 = d.iter().sum();
        match sum.cmp(&target) {
            std::cmp::Ordering::Equal => return,
            std::cmp::Ordering::Less => {
                let mut deficit = target - sum;
                for v in d.iter_mut() {
                    if deficit == 0 {
                        break;
                    }
                    *v += 1;
                    deficit -= 1;
                }
            }
            std::cmp::Ordering::Greater => {
                let mut surplus = sum - target;
                for v in d.iter_mut() {
                    if surplus == 0 {
                        break;
                    }
                    if *v > 2 {
                        *v -= 1;
                        surplus -= 1;
                    }
                }
            }
        }
    }
}

/// Generates a KDD 98-shaped regression dataset.
pub fn kdd98_like(config: &GenConfig) -> Dataset {
    let doms = domains();
    let n = config.rows(BASE_ROWS);
    let mut rng = crate::synth::rng_for(config, 0x98u64);
    // The error structure mirrors real lm errors on KDD98: a handful of
    // "large donor" segments carry almost all of the squared loss.
    //
    // * Four narrow single-predicate *spikes* produce extreme basic-slice
    //   scores, so the top-K threshold is already high after level 1.
    // * Planted rows spread their other feature values nearly uniformly
    //   within a latent group (`group_skew` 0.15), so no unrelated column
    //   accumulates enough error mass to beat that threshold — this is
    //   what lets score pruning collapse the ~20M-pair level-2 join to
    //   the paper's "thousands of candidates" scale (Fig. 4b).
    // * Two deeper conjunctions with large mass remain discoverable.
    let planted = vec![
        // Four 2-predicate "spike" segments on tail codes of wide
        // features: tail codes have ~zero background probability, so the
        // slices contain (almost) only the forced rows — their basic
        // columns score extremely high, lifting the top-K threshold right
        // after level 1 without leaking error mass into popular codes.
        PlantedSlice {
            predicates: vec![(0, 40), (12, 39)],
            elevated: 100.0,
            fraction: 0.010,
        },
        PlantedSlice {
            predicates: vec![(24, 41), (36, 38)],
            elevated: 100.0,
            fraction: 0.010,
        },
        PlantedSlice {
            predicates: vec![(48, 40), (60, 39)],
            elevated: 98.0,
            fraction: 0.010,
        },
        PlantedSlice {
            predicates: vec![(72, 41), (84, 38)],
            elevated: 96.0,
            fraction: 0.010,
        },
        // Deeper conjunctions with large mass, also on tail codes.
        PlantedSlice {
            predicates: vec![(19, 12), (100, 12)],
            elevated: 50.0,
            fraction: 0.04,
        },
        PlantedSlice {
            predicates: vec![(200, 11), (300, 10), (400, 12)],
            elevated: 54.0,
            fraction: 0.035,
        },
    ];
    // Strong global skew: only head categories pass sigma (thousands, not
    // all 8378); near-uniform group spread dilutes planted mass.
    let sampler = CorrelatedSampler::with_group_skew(&doms, 6, 0.10, 1.5, 0.0, &mut rng);
    let x0 = sample_matrix(n, &doms, &sampler, &planted, &mut rng);
    let errors = regression_errors(&x0, &planted, 0.05, &mut rng);
    Dataset {
        name: "KDD98Sim".to_string(),
        features: FeatureSet::opaque_from_domains(&doms),
        x0,
        errors,
        task: Task::Regression,
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_sum_exactly() {
        let d = domains();
        assert_eq!(d.len(), 469);
        assert_eq!(d.iter().sum::<u32>(), 8_378);
        assert!(d.iter().all(|&v| v >= 2));
    }

    #[test]
    fn shape_matches_table1() {
        let d = kdd98_like(&GenConfig {
            seed: 3,
            scale: 0.02,
        });
        assert_eq!(d.m(), 469);
        assert_eq!(d.l(), 8_378);
        assert_eq!(d.task, Task::Regression);
    }

    #[test]
    fn errors_nonnegative_continuous() {
        let d = kdd98_like(&GenConfig {
            seed: 3,
            scale: 0.02,
        });
        assert!(d.errors.iter().all(|&e| e >= 0.0));
        // Regression errors are not all 0/1.
        assert!(d.errors.iter().any(|&e| e > 0.0 && e != 1.0));
    }

    #[test]
    fn planted_regression_slices_elevated() {
        let d = kdd98_like(&GenConfig {
            seed: 11,
            scale: 0.3,
        });
        let overall: f64 = d.errors.iter().sum::<f64>() / d.n() as f64;
        let slice = &d.planted[0];
        let (matches, err): (usize, f64) = (0..d.n())
            .filter(|&r| slice.matches(&d.x0, r))
            .fold((0, 0.0), |(c, e), r| (c + 1, e + d.errors[r]));
        assert!(matches >= 10, "only {matches} planted rows");
        assert!(err / matches as f64 > overall * 2.0);
    }

    #[test]
    fn deterministic() {
        let c = GenConfig {
            seed: 3,
            scale: 0.01,
        };
        assert_eq!(kdd98_like(&c).errors, kdd98_like(&c).errors);
    }
}
