//! Shared synthetic-data machinery: the [`Dataset`] container, planted
//! slices, correlated categorical sampling, and error-vector generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline_frame::{FeatureSet, IntMatrix};

/// The prediction task a dataset simulates (Table 1, rightmost column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Regression (errors are squared-loss-like, continuous).
    Regression,
    /// Classification with the given class count (errors are 0/1
    /// inaccuracy).
    Classification {
        /// Number of classes.
        classes: usize,
    },
}

impl Task {
    /// Table-1 style label, e.g. `"2-Class"` or `"Reg."`.
    pub fn label(&self) -> String {
        match self {
            Task::Regression => "Reg.".to_string(),
            Task::Classification { classes } => format!("{classes}-Class"),
        }
    }
}

/// A slice deliberately planted with elevated model error.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSlice {
    /// `(feature, 1-based code)` predicates, **sorted by feature index**
    /// so they compare directly against `SliceInfo::predicates`.
    pub predicates: Vec<(usize, u32)>,
    /// Error probability (classification) or noise scale multiplier
    /// (regression) inside the slice.
    pub elevated: f64,
    /// Fraction of the rows forced to match this slice.
    pub fraction: f64,
}

impl PlantedSlice {
    /// `true` if the row matches all predicates.
    pub fn matches(&self, x0: &IntMatrix, row: usize) -> bool {
        self.predicates
            .iter()
            .all(|&(j, code)| x0.get(row, j) == code)
    }
}

/// A generated dataset: integer-encoded features, error vector, metadata
/// and ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"AdultSim"`).
    pub name: String,
    /// Integer-encoded feature matrix `X₀`.
    pub x0: IntMatrix,
    /// Feature metadata (opaque names for synthetic features).
    pub features: FeatureSet,
    /// Simulated model errors, row-aligned and non-negative.
    pub errors: Vec<f64>,
    /// The simulated task.
    pub task: Task,
    /// Ground-truth planted slices (sorted by descending `elevated`).
    pub planted: Vec<PlantedSlice>,
}

impl Dataset {
    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.x0.rows()
    }

    /// Number of features `m`.
    pub fn m(&self) -> usize {
        self.x0.cols()
    }

    /// One-hot width `l = Σ d_j`.
    pub fn l(&self) -> usize {
        self.x0.onehot_cols()
    }

    /// Renders the dataset's Table-1 row: name, n, m, l, task.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<14} {:>12} {:>6} {:>12} {:>10}",
            self.name,
            self.n(),
            self.m(),
            self.l(),
            self.task.label()
        )
    }
}

/// Generator configuration shared by all datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// RNG seed; every generator is deterministic given the seed.
    pub seed: u64,
    /// Row-count scale factor (1.0 = the generator's laptop-sized base).
    pub scale: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x511C_E11E,
            scale: 1.0,
        }
    }
}

impl GenConfig {
    /// Config with a specific seed at scale 1.
    pub fn seeded(seed: u64) -> Self {
        GenConfig { seed, scale: 1.0 }
    }

    /// Scales a base row count, keeping at least 16 rows.
    pub fn rows(&self, base: usize) -> usize {
        (((base as f64) * self.scale).round() as usize).max(16)
    }
}

/// Correlated categorical feature sampler.
///
/// Each row first draws a latent group `z ∈ 0..groups`; each feature then
/// draws from a group-conditioned multinomial with probability
/// `correlation`, or from a shared global multinomial otherwise. Higher
/// `correlation` produces the correlated column groups that make Covtype
/// and USCensus hard for enumeration (§5.2).
pub struct CorrelatedSampler {
    /// Per-feature, per-group cumulative weight tables.
    group_tables: Vec<Vec<Vec<f64>>>,
    /// Per-feature global cumulative weight tables.
    global_tables: Vec<Vec<f64>>,
    /// Probability of sampling from the group-conditioned table.
    correlation: f64,
    groups: usize,
}

impl CorrelatedSampler {
    /// Builds cumulative tables for the given per-feature domains.
    ///
    /// `skew` shapes the marginals: 0 = uniform, larger values concentrate
    /// mass on few codes (Zipf-like with exponent `skew`). The
    /// group-conditioned tables use the same skew; see
    /// [`CorrelatedSampler::with_group_skew`] to separate them.
    pub fn new(
        domains: &[u32],
        groups: usize,
        correlation: f64,
        skew: f64,
        rng: &mut StdRng,
    ) -> Self {
        Self::with_group_skew(domains, groups, correlation, skew, skew, rng)
    }

    /// Like [`CorrelatedSampler::new`] but with a separate Zipf exponent
    /// for the group-conditioned tables. A low `group_skew` spreads each
    /// group's rows over many codes — used to control how much error mass
    /// any single feature value accumulates from planted high-error rows.
    pub fn with_group_skew(
        domains: &[u32],
        groups: usize,
        correlation: f64,
        skew: f64,
        group_skew: f64,
        rng: &mut StdRng,
    ) -> Self {
        let groups = groups.max(1);
        let mut group_tables = Vec::with_capacity(domains.len());
        let mut global_tables = Vec::with_capacity(domains.len());
        for &d in domains {
            let d = d as usize;
            global_tables.push(cumulative(&zipf_weights(d, skew, rng)));
            let mut per_group = Vec::with_capacity(groups);
            for _ in 0..groups {
                per_group.push(cumulative(&zipf_weights(d, group_skew, rng)));
            }
            group_tables.push(per_group);
        }
        CorrelatedSampler {
            group_tables,
            global_tables,
            correlation,
            groups,
        }
    }

    /// Number of latent groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Samples a latent group for a row.
    pub fn sample_group(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(0..self.groups)
    }

    /// Samples the 1-based code of feature `j` for a row in group `z`.
    pub fn sample_code(&self, j: usize, z: usize, rng: &mut StdRng) -> u32 {
        let table = if rng.gen::<f64>() < self.correlation {
            &self.group_tables[j][z]
        } else {
            &self.global_tables[j]
        };
        sample_cumulative(table, rng) as u32 + 1
    }

    /// Samples feature `j` strictly from group `z`'s conditional
    /// distribution (correlation 1). Used for planted-slice rows so their
    /// *other* feature values concentrate on the group's head codes —
    /// real model errors cluster on feature patterns, and this clustering
    /// is what makes the paper's score upper bound prune effectively.
    pub fn sample_code_grouped(&self, j: usize, z: usize, rng: &mut StdRng) -> u32 {
        sample_cumulative(&self.group_tables[j][z], rng) as u32 + 1
    }
}

/// Zipf-like weights over `d` codes with exponent `skew`, randomly
/// permuted so the heavy code differs per table.
fn zipf_weights(d: usize, skew: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=d).map(|r| 1.0 / (r as f64).powf(skew)).collect();
    // Fisher-Yates permutation of the weights.
    for i in (1..w.len()).rev() {
        let j = rng.gen_range(0..=i);
        w.swap(i, j);
    }
    w
}

/// Cumulative (unnormalized) weight table.
fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|&w| {
            acc += w;
            acc
        })
        .collect()
}

/// Samples an index proportionally to the cumulative table.
fn sample_cumulative(table: &[f64], rng: &mut StdRng) -> usize {
    let total = *table.last().expect("non-empty table");
    let target = rng.gen::<f64>() * total;
    match table.binary_search_by(|p| p.partial_cmp(&target).unwrap()) {
        Ok(i) => i,
        Err(i) => i.min(table.len() - 1),
    }
}

/// Generates a classification-style 0/1 error vector: rows matching a
/// planted slice err with that slice's `elevated` probability, everything
/// else with `baseline`.
pub fn classification_errors(
    x0: &IntMatrix,
    planted: &[PlantedSlice],
    baseline: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    (0..x0.rows())
        .map(|r| {
            let p = planted
                .iter()
                .filter(|s| s.matches(x0, r))
                .map(|s| s.elevated)
                .fold(baseline, f64::max);
            if rng.gen::<f64>() < p {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Generates a regression-style squared-loss error vector: residuals are
/// `N(0, base_sigma)` scaled by a planted slice's `elevated` multiplier
/// when the row matches.
pub fn regression_errors(
    x0: &IntMatrix,
    planted: &[PlantedSlice],
    base_sigma: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    (0..x0.rows())
        .map(|r| {
            let scale = planted
                .iter()
                .filter(|s| s.matches(x0, r))
                .map(|s| s.elevated)
                .fold(1.0, f64::max);
            let z = gaussian(rng) * base_sigma * scale;
            z * z
        })
        .collect()
}

/// Standard normal sample via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Builds an [`IntMatrix`] by sampling every feature of every row from a
/// [`CorrelatedSampler`], then overwrites planted-slice rows so each
/// planted slice reaches at least `min_slice_fraction` of the rows.
pub fn sample_matrix(
    n: usize,
    domains: &[u32],
    sampler: &CorrelatedSampler,
    planted: &[PlantedSlice],
    rng: &mut StdRng,
) -> IntMatrix {
    let m = domains.len();
    let mut data = Vec::with_capacity(n * m);
    for _ in 0..n {
        let z = sampler.sample_group(rng);
        for j in 0..m {
            data.push(sampler.sample_code(j, z, rng));
        }
    }
    // Force planted slices to reach their minimum support: assign
    // dedicated row ranges (disjoint per slice) the slice's predicates,
    // and resample the rows' *other* features from one fixed latent group
    // (high-error rows cluster on feature patterns; without this, every
    // feature value would contain some planted rows and the paper's
    // max-tuple-error bound ⌈sm⌉ could never prune).
    let mut next_row = 0usize;
    for (slice_idx, slice) in planted.iter().enumerate() {
        let group = slice_idx % sampler.groups();
        let per_slice = ((n as f64) * slice.fraction).ceil() as usize;
        for _ in 0..per_slice {
            if next_row >= n {
                break;
            }
            for j in 0..m {
                data[next_row * m + j] = sampler.sample_code_grouped(j, group, rng);
            }
            for &(j, code) in &slice.predicates {
                data[next_row * m + j] = code;
            }
            next_row += 1;
        }
    }
    IntMatrix::new(n, m, data, domains.to_vec()).expect("sampled codes are within domains")
}

/// Seeded RNG helper.
pub fn rng_for(config: &GenConfig, stream: u64) -> StdRng {
    StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn task_labels() {
        assert_eq!(Task::Regression.label(), "Reg.");
        assert_eq!(Task::Classification { classes: 7 }.label(), "7-Class");
    }

    #[test]
    fn gen_config_rows_scale() {
        let c = GenConfig {
            seed: 1,
            scale: 0.5,
        };
        assert_eq!(c.rows(1000), 500);
        let tiny = GenConfig {
            seed: 1,
            scale: 1e-9,
        };
        assert_eq!(tiny.rows(1000), 16);
    }

    #[test]
    fn planted_slice_matching() {
        let x0 = IntMatrix::from_rows(&[vec![1, 2], vec![2, 2]]).unwrap();
        let s = PlantedSlice {
            predicates: vec![(0, 1), (1, 2)],
            elevated: 0.5,
            fraction: 0.05,
        };
        assert!(s.matches(&x0, 0));
        assert!(!s.matches(&x0, 1));
    }

    #[test]
    fn sampler_codes_in_domain() {
        let mut r = rng();
        let domains = [3u32, 5, 2];
        let s = CorrelatedSampler::new(&domains, 4, 0.7, 1.0, &mut r);
        assert_eq!(s.groups(), 4);
        for _ in 0..500 {
            let z = s.sample_group(&mut r);
            for (j, &d) in domains.iter().enumerate() {
                let code = s.sample_code(j, z, &mut r);
                assert!(code >= 1 && code <= d);
            }
        }
    }

    #[test]
    fn correlation_produces_group_structure() {
        let mut r = rng();
        let domains = [8u32];
        let s = CorrelatedSampler::new(&domains, 2, 1.0, 2.0, &mut r);
        // With correlation 1.0, within-group samples concentrate on the
        // group's heavy codes; measure that the two groups' modal codes
        // differ in distribution by comparing histograms.
        let mut h0 = vec![0usize; 8];
        let mut h1 = vec![0usize; 8];
        for _ in 0..2000 {
            h0[(s.sample_code(0, 0, &mut r) - 1) as usize] += 1;
            h1[(s.sample_code(0, 1, &mut r) - 1) as usize] += 1;
        }
        let l1: usize = h0.iter().zip(h1.iter()).map(|(&a, &b)| a.abs_diff(b)).sum();
        assert!(l1 > 200, "group histograms too similar: {h0:?} vs {h1:?}");
    }

    #[test]
    fn classification_errors_respect_rates() {
        let mut r = rng();
        let n = 4000;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![1 + (i % 2) as u32]).collect();
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        let planted = vec![PlantedSlice {
            predicates: vec![(0, 1)],
            elevated: 0.8,
            fraction: 0.0,
        }];
        let e = classification_errors(&x0, &planted, 0.1, &mut r);
        let slice_rate: f64 = (0..n).step_by(2).map(|i| e[i]).sum::<f64>() / (n as f64 / 2.0);
        let rest_rate: f64 = (1..n).step_by(2).map(|i| e[i]).sum::<f64>() / (n as f64 / 2.0);
        assert!(slice_rate > 0.7, "slice rate {slice_rate}");
        assert!(rest_rate < 0.2, "rest rate {rest_rate}");
        assert!(e.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn regression_errors_elevated_in_slice() {
        let mut r = rng();
        let n = 4000;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![1 + (i % 2) as u32]).collect();
        let x0 = IntMatrix::from_rows(&rows).unwrap();
        let planted = vec![PlantedSlice {
            predicates: vec![(0, 1)],
            elevated: 4.0,
            fraction: 0.0,
        }];
        let e = regression_errors(&x0, &planted, 1.0, &mut r);
        assert!(e.iter().all(|&v| v >= 0.0));
        let slice_mean: f64 = (0..n).step_by(2).map(|i| e[i]).sum::<f64>() / (n as f64 / 2.0);
        let rest_mean: f64 = (1..n).step_by(2).map(|i| e[i]).sum::<f64>() / (n as f64 / 2.0);
        assert!(slice_mean > 4.0 * rest_mean, "{slice_mean} vs {rest_mean}");
    }

    #[test]
    fn sample_matrix_plants_support() {
        let mut r = rng();
        let domains = [4u32, 4, 4];
        let sampler = CorrelatedSampler::new(&domains, 2, 0.5, 1.0, &mut r);
        let planted = vec![PlantedSlice {
            predicates: vec![(0, 2), (2, 3)],
            elevated: 0.5,
            fraction: 0.05,
        }];
        let x0 = sample_matrix(1000, &domains, &sampler, &planted, &mut r);
        let matches = (0..1000).filter(|&i| planted[0].matches(&x0, i)).count();
        assert!(matches >= 50, "planted slice support {matches} < 50");
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn determinism_per_seed() {
        let c = GenConfig::seeded(99);
        let mut a = rng_for(&c, 1);
        let mut b = rng_for(&c, 1);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut other = rng_for(&c, 2);
        assert_ne!(a.gen::<u64>(), other.gen::<u64>());
    }
}
