//! Criteo-day-21-shaped generator: `m = 39` features with power-law
//! category counts, 2-class, ultra-sparse after one-hot encoding.
//!
//! CriteoD21 in the paper has 192M rows and 75.6M one-hot columns
//! (density 4.9e-7): hashed categorical features where only 209 of 75.6M
//! basic slices satisfy the minimum support (Table 2). The phenomenon to
//! preserve is exactly that survival pattern — *huge domains where almost
//! every category is rare* — which a Zipf distribution over category ids
//! reproduces at any scale: a handful of head categories pass `σ = n/100`
//! while the long tail fails.

use crate::synth::{Dataset, GenConfig, PlantedSlice, Task};
use rand::Rng;
use sliceline_frame::{FeatureSet, IntMatrix};

/// Base row count before scaling (1e-3 of the real 192M).
const BASE_ROWS: usize = 192_215;

/// Per-feature domain size at scale 1 (13 "integer" features binned to
/// small domains like the paper's preprocessing, 26 hashed categoricals
/// with large power-law domains).
fn domains(n: usize) -> Vec<u32> {
    let mut d = vec![10u32; 13];
    // Hashed categorical domains grow with n, capped to keep one-hot
    // width proportional to the dataset (ultra-sparse at any scale).
    let wide = ((n / 8).max(64)) as u32;
    for j in 0..26 {
        // Alternate a few width classes like real Criteo columns.
        let w = match j % 3 {
            0 => wide,
            1 => wide / 4,
            _ => 100,
        };
        d.push(w.max(8));
    }
    d
}

/// Generates a Criteo-shaped ultra-sparse click dataset.
pub fn criteo_like(config: &GenConfig) -> Dataset {
    let n = config.rows(BASE_ROWS);
    let doms = domains(n);
    let m = doms.len();
    let mut rng = crate::synth::rng_for(config, 0xC417u64);
    let planted = vec![
        PlantedSlice {
            predicates: vec![(0, 3), (13, 1)], // head category of a wide col
            elevated: 0.5,
            fraction: 0.02,
        },
        PlantedSlice {
            predicates: vec![(1, 7), (2, 7)],
            elevated: 0.4,
            fraction: 0.02,
        },
    ];
    // Zipf sampling per feature: precompute cumulative weights for the
    // head (first H codes); the tail is sampled uniformly so wide domains
    // need no O(domain) table.
    let mut data = Vec::with_capacity(n * m);
    let head = 32usize;
    let head_tables: Vec<Vec<f64>> = doms
        .iter()
        .map(|&d| {
            let h = head.min(d as usize);
            let mut acc = 0.0;
            (1..=h)
                .map(|r| {
                    acc += 1.0 / (r as f64).powf(1.2);
                    acc
                })
                .collect()
        })
        .collect();
    for _ in 0..n {
        for (j, &d) in doms.iter().enumerate() {
            let table = &head_tables[j];
            let total_head = *table.last().unwrap();
            // ~85% of mass in the head, the rest spread uniformly over the
            // tail — only head categories can reach σ = n/100.
            let code = if d as usize <= head || rng.gen::<f64>() < 0.85 {
                let t = rng.gen::<f64>() * total_head;
                match table.binary_search_by(|p| p.partial_cmp(&t).unwrap()) {
                    Ok(i) => i as u32 + 1,
                    Err(i) => (i.min(table.len() - 1)) as u32 + 1,
                }
            } else {
                rng.gen_range(head as u32..d) + 1
            };
            data.push(code.min(d));
        }
    }
    // Plant slices on leading rows.
    let mut next = 0usize;
    for slice in &planted {
        let per_slice = ((n as f64) * slice.fraction).ceil() as usize;
        for _ in 0..per_slice {
            if next >= n {
                break;
            }
            for &(j, code) in &slice.predicates {
                data[next * m + j] = code;
            }
            next += 1;
        }
    }
    let x0 = IntMatrix::new(n, m, data, doms.clone()).expect("codes within domains");
    let errors = crate::synth::classification_errors(&x0, &planted, 0.08, &mut rng);
    Dataset {
        name: "CriteoSim".to_string(),
        features: FeatureSet::opaque_from_domains(&doms),
        x0,
        errors,
        task: Task::Classification { classes: 2 },
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline_frame::onehot::one_hot_encode;

    fn small() -> Dataset {
        criteo_like(&GenConfig {
            seed: 6,
            scale: 0.02,
        })
    }

    #[test]
    fn shape_is_criteo_like() {
        let d = small();
        assert_eq!(d.m(), 39);
        assert!(d.l() > 1_000, "one-hot width {} too small", d.l());
        assert_eq!(d.task, Task::Classification { classes: 2 });
    }

    #[test]
    fn one_hot_is_ultra_sparse() {
        let d = small();
        let x = one_hot_encode(&d.x0);
        assert!(
            x.density() < 0.05,
            "density {} not ultra-sparse",
            x.density()
        );
    }

    #[test]
    fn few_basic_slices_survive_min_support() {
        let d = small();
        let x = one_hot_encode(&d.x0);
        let sums = sliceline_linalg::agg::col_sums_csr(&x);
        let sigma = (d.n() / 100).max(1) as f64;
        let surviving = sums.iter().filter(|&&s| s >= sigma).count();
        // The Table-2 phenomenon: a tiny fraction of columns survive σ.
        assert!(surviving > 0);
        assert!(
            (surviving as f64) < 0.25 * d.l() as f64,
            "{surviving} of {} columns survive — not Criteo-like",
            d.l()
        );
    }

    #[test]
    fn wide_domains_scale_with_n() {
        let small_d = criteo_like(&GenConfig {
            seed: 6,
            scale: 0.01,
        });
        let large_d = criteo_like(&GenConfig {
            seed: 6,
            scale: 0.05,
        });
        assert!(large_d.l() > small_d.l());
    }

    #[test]
    fn deterministic() {
        let c = GenConfig {
            seed: 6,
            scale: 0.01,
        };
        assert_eq!(criteo_like(&c).errors, criteo_like(&c).errors);
    }
}
