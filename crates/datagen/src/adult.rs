//! Adult-shaped generator: `n ≈ 32,561`, `m = 14`, `l = 162`, 2-class.
//!
//! UCI Adult — used by both SliceFinder and SliceLine — mixes small
//! categorical domains (sex: 2, race: 5) with 10-bin binned continuous
//! features and one wide categorical (native-country). Its signature in
//! the paper's Fig. 4a is *good pruning with early termination*: a
//! moderate number of slices per level that tails off by level ~12 of 14.
//! Mild correlation plus a handful of planted biased slices reproduces
//! that shape.

use crate::synth::{
    classification_errors, sample_matrix, CorrelatedSampler, Dataset, GenConfig, PlantedSlice, Task,
};
use sliceline_frame::FeatureSet;

/// Per-feature domain sizes mirroring Adult after recode/binning
/// (sums to 162 one-hot columns over 14 features).
pub const DOMAINS: [u32; 14] = [10, 8, 10, 16, 10, 7, 14, 6, 5, 2, 10, 10, 10, 44];

/// Generates an Adult-shaped dataset with planted biased slices.
pub fn adult_like(config: &GenConfig) -> Dataset {
    let n = config.rows(32_561);
    let mut rng = crate::synth::rng_for(config, 0xADu64);
    // Planted problematic subgroups, echoing the motivating examples
    // (e.g. "gender female AND degree PhD"):
    let planted = vec![
        PlantedSlice {
            predicates: vec![(3, 12), (9, 2)], // education=12 AND sex=2
            elevated: 0.65,
            fraction: 0.03,
        },
        PlantedSlice {
            predicates: vec![(5, 3), (7, 4)], // marital=3 AND relationship=4
            elevated: 0.5,
            fraction: 0.03,
        },
        PlantedSlice {
            predicates: vec![(1, 6)], // workclass=6
            elevated: 0.35,
            fraction: 0.03,
        },
        // A broad, mildly elevated slice (a third of the data at ~2x the
        // baseline error): this is what low-alpha runs surface, matching
        // the paper's Fig. 5 where even alpha = 0.36 finds slices.
        PlantedSlice {
            predicates: vec![(10, 1)],
            elevated: 0.22,
            fraction: 0.22,
        },
    ];
    let sampler = CorrelatedSampler::new(&DOMAINS, 6, 0.35, 1.1, &mut rng);
    let x0 = sample_matrix(n, &DOMAINS, &sampler, &planted, &mut rng);
    let errors = classification_errors(&x0, &planted, 0.12, &mut rng);
    Dataset {
        name: "AdultSim".to_string(),
        features: FeatureSet::opaque_from_domains(&DOMAINS),
        x0,
        errors,
        task: Task::Classification { classes: 2 },
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let d = adult_like(&GenConfig {
            seed: 1,
            scale: 0.05,
        });
        assert_eq!(d.m(), 14);
        assert_eq!(d.l(), 162);
        assert_eq!(d.n(), 1628);
        assert_eq!(d.task, Task::Classification { classes: 2 });
    }

    #[test]
    fn deterministic_given_seed() {
        let c = GenConfig {
            seed: 5,
            scale: 0.02,
        };
        let a = adult_like(&c);
        let b = adult_like(&c);
        assert_eq!(a.x0, b.x0);
        assert_eq!(a.errors, b.errors);
        let other = adult_like(&GenConfig {
            seed: 6,
            scale: 0.02,
        });
        assert_ne!(a.errors, other.errors);
    }

    #[test]
    fn planted_slices_have_elevated_error() {
        let d = adult_like(&GenConfig {
            seed: 3,
            scale: 0.2,
        });
        let n = d.n();
        for slice in &d.planted {
            let (matches, err): (usize, f64) = (0..n)
                .filter(|&r| slice.matches(&d.x0, r))
                .fold((0, 0.0), |(c, e), r| (c + 1, e + d.errors[r]));
            assert!(matches > 0, "planted slice has no support");
            let slice_rate = err / matches as f64;
            let overall: f64 = d.errors.iter().sum::<f64>() / n as f64;
            // The broad weak slice covers ~45% of rows at barely-above
            // average error (by design — it exists for the low-alpha
            // regime); require only a token lift for it.
            let min_lift = if slice.fraction > 0.1 { 1.05 } else { 1.5 };
            assert!(
                slice_rate > overall * min_lift,
                "slice rate {slice_rate} vs overall {overall} (lift {min_lift})"
            );
        }
    }

    #[test]
    fn errors_are_binary() {
        let d = adult_like(&GenConfig {
            seed: 4,
            scale: 0.02,
        });
        assert!(d.errors.iter().all(|&e| e == 0.0 || e == 1.0));
    }

    #[test]
    fn table1_row_renders() {
        let d = adult_like(&GenConfig {
            seed: 1,
            scale: 0.02,
        });
        let row = d.table1_row();
        assert!(row.contains("AdultSim"));
        assert!(row.contains("162"));
        assert!(row.contains("2-Class"));
    }
}
