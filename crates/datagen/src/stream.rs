//! Streaming Criteo-scale row-block generator for out-of-core runs.
//!
//! [`criteo_like`](crate::criteo_like) materializes the whole dataset —
//! fine up to a few million rows, hopeless at the paper's 192M (§5.4).
//! [`CriteoStream`] generates the same *shape* of data (39 features,
//! power-law categoricals, planted leading-row slices, 0/1
//! classification errors) as a [`RowBlockSource`], so the chunked driver
//! can stream hundreds of millions of rows without them ever existing at
//! once.
//!
//! Two deliberate differences from the materialized generator:
//!
//! * **Per-row seeding.** Each row draws from its own
//!   counter-seeded RNG (codes first, then the error), so row `r` is a
//!   pure function of `(seed, r)`. That makes every pass identical for
//!   *any* block-size schedule — the invariance the
//!   [`RowBlockSource`] contract requires — where the materialized
//!   generator's single sequential stream (all codes, then all errors)
//!   cannot be reproduced chunk-by-chunk.
//! * **Capped wide domains.** Hashed-categorical domains are fixed at
//!   65 536 / 16 384 / 100 instead of growing with `n`, keeping the
//!   one-hot width (and the driver's `O(l)` pass-A statistics) constant
//!   (~738K columns, ~18 MB of stats) while rows scale to Criteo size.
//!   The Table-2 phenomenon — only head categories survive `σ` — is
//!   preserved by the same Zipf head sampling.

use crate::synth::PlantedSlice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline_frame::{IntMatrix, RowBlock, RowBlockSource};

/// Zipf head size per feature (codes `1..=HEAD` carry ~85% of the mass).
const HEAD: usize = 32;
/// Zipf exponent for head-category weights.
const ZIPF_EXPONENT: f64 = 1.2;
/// Probability mass routed to the head of wide domains.
const HEAD_PROB: f64 = 0.85;
/// Baseline per-row error probability off the planted slices.
const BASELINE: f64 = 0.08;

/// Fixed per-feature domains: 13 small "integer" features, 26 hashed
/// categoricals alternating three width classes.
fn stream_domains() -> Vec<u32> {
    let mut d = vec![10u32; 13];
    for j in 0..26 {
        d.push(match j % 3 {
            0 => 65_536,
            1 => 16_384,
            _ => 100,
        });
    }
    d
}

/// A seeded, resettable Criteo-shaped row stream.
///
/// Yields `n` rows of 39 integer-coded features plus a 0/1 error value,
/// in ascending row order, identically on every pass regardless of the
/// requested block sizes. [`materialize`](CriteoStream::materialize)
/// produces the exact same rows as an in-memory pair for parity oracles.
#[derive(Debug, Clone)]
pub struct CriteoStream {
    seed: u64,
    n: usize,
    domains: Vec<u32>,
    planted: Vec<PlantedSlice>,
    /// Cumulative Zipf weights for the head of each feature's domain.
    head_tables: Vec<Vec<f64>>,
    pos: usize,
}

impl CriteoStream {
    /// Creates a stream of `rows` rows for the given seed.
    pub fn new(seed: u64, rows: usize) -> Self {
        let domains = stream_domains();
        let head_tables = domains
            .iter()
            .map(|&d| {
                let h = HEAD.min(d as usize);
                let mut acc = 0.0;
                (1..=h)
                    .map(|r| {
                        acc += 1.0 / (r as f64).powf(ZIPF_EXPONENT);
                        acc
                    })
                    .collect()
            })
            .collect();
        CriteoStream {
            seed,
            n: rows,
            domains,
            head_tables,
            planted: vec![
                PlantedSlice {
                    predicates: vec![(0, 3), (13, 1)],
                    elevated: 0.5,
                    fraction: 0.02,
                },
                PlantedSlice {
                    predicates: vec![(1, 7), (2, 7)],
                    elevated: 0.4,
                    fraction: 0.02,
                },
            ],
            pos: 0,
        }
    }

    /// The planted problematic slices (on leading rows, like
    /// [`criteo_like`](crate::criteo_like)).
    pub fn planted(&self) -> &[PlantedSlice] {
        &self.planted
    }

    /// Writes row `r`'s codes into `out` and returns its error value.
    /// Pure in `(seed, r)`: codes are drawn first, then planted
    /// predicates overwrite leading rows, then the error draw uses the
    /// same per-row RNG.
    fn fill_row(&self, r: usize, out: &mut [u32]) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (r as u64).wrapping_mul(0xD134_2543_DE82_EF95)
                ^ 0x57AE,
        );
        for (j, &d) in self.domains.iter().enumerate() {
            let table = &self.head_tables[j];
            let total_head = *table.last().expect("domains are non-empty");
            let code = if d as usize <= HEAD || rng.gen::<f64>() < HEAD_PROB {
                let t = rng.gen::<f64>() * total_head;
                match table.binary_search_by(|p| p.partial_cmp(&t).expect("weights are finite")) {
                    Ok(i) => i as u32 + 1,
                    Err(i) => (i.min(table.len() - 1)) as u32 + 1,
                }
            } else {
                rng.gen_range(HEAD as u32..d) + 1
            };
            out[j] = code.min(d);
        }
        // Leading-row planting: slice 0 owns rows [0, c0), slice 1 the
        // next ceil(n * fraction) rows, and so on.
        let mut lo = 0usize;
        for slice in &self.planted {
            let per_slice = ((self.n as f64) * slice.fraction).ceil() as usize;
            if r >= lo && r < (lo + per_slice).min(self.n) {
                for &(j, code) in &slice.predicates {
                    out[j] = code;
                }
                break;
            }
            lo += per_slice;
        }
        let p = self
            .planted
            .iter()
            .filter(|s| s.predicates.iter().all(|&(j, code)| out[j] == code))
            .map(|s| s.elevated)
            .fold(BASELINE, f64::max);
        if rng.gen::<f64>() < p {
            1.0
        } else {
            0.0
        }
    }

    /// Materializes the full stream as an in-memory `(X₀, e)` pair —
    /// the parity oracle for scales where both paths fit.
    pub fn materialize(&self) -> (IntMatrix, Vec<f64>) {
        let m = self.domains.len();
        let mut data = vec![0u32; self.n * m];
        let mut errors = Vec::with_capacity(self.n);
        for r in 0..self.n {
            errors.push(self.fill_row(r, &mut data[r * m..(r + 1) * m]));
        }
        let x0 = IntMatrix::new(self.n, m, data, self.domains.clone())
            .expect("generated codes are within domains");
        (x0, errors)
    }
}

impl RowBlockSource for CriteoStream {
    fn domains(&self) -> &[u32] {
        &self.domains
    }

    fn total_rows(&self) -> usize {
        self.n
    }

    fn next_block(&mut self, max_rows: usize) -> Option<RowBlock> {
        assert!(max_rows >= 1, "next_block needs max_rows >= 1");
        if self.pos >= self.n {
            return None;
        }
        let end = (self.pos + max_rows).min(self.n);
        let rows = end - self.pos;
        let m = self.domains.len();
        let mut data = vec![0u32; rows * m];
        let mut errors = Vec::with_capacity(rows);
        for (i, r) in (self.pos..end).enumerate() {
            errors.push(self.fill_row(r, &mut data[i * m..(i + 1) * m]));
        }
        self.pos = end;
        let x0 = IntMatrix::new(rows, m, data, self.domains.clone())
            .expect("generated codes are within domains");
        Some(RowBlock { x0, errors })
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_invariant_to_block_size() {
        let (x0, errors) = CriteoStream::new(7, 100).materialize();
        for block_rows in [1usize, 7, 64, 100, 1000] {
            let mut src = CriteoStream::new(7, 100);
            let mut row = 0usize;
            let mut seen_errors = Vec::new();
            while let Some(block) = src.next_block(block_rows) {
                for r in 0..block.rows() {
                    assert_eq!(block.x0.row(r), x0.row(row), "row {row}");
                    row += 1;
                }
                seen_errors.extend_from_slice(&block.errors);
            }
            assert_eq!(row, 100);
            assert_eq!(seen_errors, errors);
        }
    }

    #[test]
    fn reset_replays_identically() {
        let mut src = CriteoStream::new(3, 50);
        let first: Vec<_> = std::iter::from_fn(|| src.next_block(16)).collect();
        src.reset();
        let second: Vec<_> = std::iter::from_fn(|| src.next_block(16)).collect();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.errors, b.errors);
            for r in 0..a.rows() {
                assert_eq!(a.x0.row(r), b.x0.row(r));
            }
        }
    }

    #[test]
    fn seeds_differ_and_errors_are_binary() {
        let (_, e1) = CriteoStream::new(1, 200).materialize();
        let (_, e2) = CriteoStream::new(2, 200).materialize();
        assert_ne!(e1, e2);
        assert!(e1.iter().all(|&e| e == 0.0 || e == 1.0));
        let mean = e1.iter().sum::<f64>() / e1.len() as f64;
        assert!(mean > 0.0 && mean < 0.5, "error rate {mean} implausible");
    }

    #[test]
    fn leading_rows_carry_planted_slices() {
        let src = CriteoStream::new(11, 500);
        let (x0, _) = src.materialize();
        // ceil(500 * 0.02) = 10 rows per slice.
        for r in 0..10 {
            assert_eq!(x0.get(r, 0), 3, "row {r}");
            assert_eq!(x0.get(r, 13), 1, "row {r}");
        }
        for r in 10..20 {
            assert_eq!(x0.get(r, 1), 7, "row {r}");
            assert_eq!(x0.get(r, 2), 7, "row {r}");
        }
    }

    #[test]
    fn shape_is_criteo_like() {
        let src = CriteoStream::new(5, 10);
        assert_eq!(src.domains().len(), 39);
        let l: usize = src.domains().iter().map(|&d| d as usize).sum();
        assert_eq!(l, 738_210);
        assert_eq!(src.total_rows(), 10);
    }
}
