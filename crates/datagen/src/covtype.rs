//! Covtype-shaped generator: `n ≈ 581,012` (base scaled down), `m = 54`,
//! `l = 188`, 7-class.
//!
//! Covtype's signature in the paper (§5.2) is *strong correlation*: the 40
//! binary soil-type columns and 4 binary wilderness-area columns are
//! mutually exclusive indicator groups, so conjunctions of many features
//! still select large slices and the lattice stays wide — the paper caps
//! `⌈L⌉` at 3–4. We reproduce this by generating the binary indicator
//! groups from single underlying categorical draws (making the binaries
//! perfectly correlated within a group), plus 10 binned continuous
//! features.

use crate::synth::{
    classification_errors, CorrelatedSampler, Dataset, GenConfig, PlantedSlice, Task,
};
use rand::Rng;
use sliceline_frame::{FeatureSet, IntMatrix};

/// Ten 10-bin continuous features + 4 wilderness binaries + 40 soil
/// binaries = 54 features, `l = 100 + 8 + 80 = 188`.
pub fn domains() -> Vec<u32> {
    let mut d = vec![10u32; 10];
    d.extend(std::iter::repeat_n(2, 44));
    d
}

/// Base row count (the real Covtype's 581,012) before scaling. The default
/// GenConfig scale of 1.0 yields a laptop-sized 29,050 rows (0.05× base);
/// pass `scale = 20.0` for the full paper size.
const BASE_ROWS: usize = 29_050;

/// Generates a Covtype-shaped dataset with correlated indicator groups.
pub fn covtype_like(config: &GenConfig) -> Dataset {
    let doms = domains();
    let n = config.rows(BASE_ROWS);
    let mut rng = crate::synth::rng_for(config, 0xC0Fu64);
    // Planted slices only touch the continuous terrain features so the
    // mutually-exclusive indicator groups stay intact.
    let planted = vec![
        PlantedSlice {
            predicates: vec![(0, 3), (1, 2)], // elevation bin 3 AND aspect bin 2
            elevated: 0.8,
            fraction: 0.06,
        },
        PlantedSlice {
            predicates: vec![(2, 7), (4, 7)], // two correlated terrain bins
            elevated: 0.7,
            fraction: 0.05,
        },
    ];
    // Continuous features via a correlated sampler (terrain features move
    // together).
    let cont_domains = &doms[..10];
    let sampler = CorrelatedSampler::new(cont_domains, 7, 0.6, 0.8, &mut rng);
    let m = doms.len();
    let mut data = Vec::with_capacity(n * m);
    for _ in 0..n {
        let z = sampler.sample_group(&mut rng);
        for j in 0..10 {
            data.push(sampler.sample_code(j, z, &mut rng));
        }
        // Wilderness area: exactly one of 4 binaries set (code 2 = present).
        let wilderness = rng.gen_range(0..4usize);
        for w in 0..4 {
            data.push(if w == wilderness { 2 } else { 1 });
        }
        // Soil type: exactly one of 40 binaries set, correlated with the
        // latent terrain group (soil ∈ z's band of ~6 types).
        let band = z * 40 / 7;
        let soil = (band + rng.gen_range(0..6usize)).min(39);
        for s in 0..40 {
            data.push(if s == soil { 2 } else { 1 });
        }
    }
    // Plant the slices (disjoint leading row ranges).
    let mut next = 0usize;
    for slice in &planted {
        let per_slice = ((n as f64) * slice.fraction).ceil() as usize;
        for _ in 0..per_slice {
            if next >= n {
                break;
            }
            for &(j, code) in &slice.predicates {
                data[next * m + j] = code;
            }
            next += 1;
        }
    }
    let x0 = IntMatrix::new(n, m, data, doms.clone()).expect("codes within domains");
    let errors = classification_errors(&x0, &planted, 0.25, &mut rng);
    Dataset {
        name: "CovtypeSim".to_string(),
        features: FeatureSet::opaque_from_domains(&doms),
        x0,
        errors,
        task: Task::Classification { classes: 7 },
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        covtype_like(&GenConfig {
            seed: 2,
            scale: 0.02,
        })
    }

    #[test]
    fn shape_matches_table1() {
        let d = small();
        assert_eq!(d.m(), 54);
        assert_eq!(d.l(), 188);
        assert_eq!(d.task, Task::Classification { classes: 7 });
    }

    #[test]
    fn soil_indicators_mutually_exclusive() {
        let d = small();
        for r in 0..d.n() {
            let soil_present = (14..54).filter(|&j| d.x0.get(r, j) == 2).count();
            assert_eq!(soil_present, 1, "row {r} has {soil_present} soil types");
            let wild_present = (10..14).filter(|&j| d.x0.get(r, j) == 2).count();
            assert_eq!(wild_present, 1);
        }
    }

    #[test]
    fn indicator_groups_are_correlated_columns() {
        // Mutual exclusivity means knowing one binary constrains the rest:
        // conjunction (soil_i=1) for all but one soil column has the same
        // support as (soil_j=2) — wide flat lattices. Spot-check that
        // absent codes dominate.
        let d = small();
        let absent_fraction =
            (0..d.n()).filter(|&r| d.x0.get(r, 20) == 1).count() as f64 / d.n() as f64;
        assert!(absent_fraction > 0.8);
    }

    #[test]
    fn deterministic() {
        let c = GenConfig {
            seed: 9,
            scale: 0.01,
        };
        assert_eq!(covtype_like(&c).errors, covtype_like(&c).errors);
    }

    #[test]
    fn planted_slices_have_support() {
        let d = small();
        for slice in &d.planted {
            let matches = (0..d.n()).filter(|&r| slice.matches(&d.x0, r)).count();
            assert!(matches as f64 >= d.n() as f64 * 0.02);
        }
    }
}
