//! # sliceline-datagen
//!
//! Seeded synthetic dataset generators matching the *shapes* of the
//! datasets in the SliceLine paper's Table 1.
//!
//! The paper evaluates on UCI Adult, Covtype, KDD 98, US Census, Criteo
//! day 21, and the tiny Salaries dataset. Those raw files are not shipped
//! here; instead each generator reproduces the characteristics that drive
//! SliceLine's behaviour — row count `n`, feature count `m`, per-feature
//! domain sizes (and hence one-hot width `l`), correlation structure, and
//! an error distribution with *planted* problematic slices so recovery can
//! be asserted. See DESIGN.md §4 for the per-dataset substitution
//! rationale.
//!
//! All generators are deterministic given a seed, and accept a `scale`
//! factor on the row count so benchmarks can run laptop-sized by default
//! and approach paper-sized with `--paper`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adult;
pub mod census;
pub mod covtype;
pub mod criteo;
pub mod kdd98;
pub mod salaries;
pub mod stream;
pub mod synth;

pub use adult::adult_like;
pub use census::census_like;
pub use covtype::covtype_like;
pub use criteo::criteo_like;
pub use kdd98::kdd98_like;
pub use salaries::{salaries, salaries_encoded};
pub use stream::CriteoStream;
pub use synth::{Dataset, GenConfig, PlantedSlice, Task};
