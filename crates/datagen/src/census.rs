//! US Census-shaped generator: `n ≈ 2,458,285` (base scaled down),
//! `m = 68`, `l = 378`, 4-class.
//!
//! The paper derives artificial 4-class labels for the unlabeled USCensus
//! data via K-Means (§5.1) and notes strong correlations (§5.2). This
//! generator mirrors the recipe directly: rows are sampled from 4 latent
//! clusters with high feature–cluster correlation; the "label" is the
//! cluster id and the simulated classifier errs mostly on rows whose
//! features straddle clusters, plus planted problematic slices.
//!
//! The generator is also the basis of the Fig. 7a scalability experiment:
//! `IntMatrix::replicate_rows` preserves enumeration characteristics under
//! the relative `σ = n/100` constraint exactly as row replication does in
//! the paper.

use crate::synth::{
    classification_errors, sample_matrix, CorrelatedSampler, Dataset, GenConfig, PlantedSlice, Task,
};
use sliceline_frame::FeatureSet;

/// Base row count before scaling (0.02× the real 2,458,285).
const BASE_ROWS: usize = 49_166;

/// 68 features with domains summing to 378 (mostly small demographic
/// codes, mirroring USCensus' 5.6 average domain).
pub fn domains() -> Vec<u32> {
    let m = 68usize;
    let target = 378u32;
    let mut d: Vec<u32> = (0..m)
        .map(|j| match j % 10 {
            0 => 10,    // binned continuous
            1 | 2 => 9, // wide categorical
            3..=5 => 5,
            _ => 3,
        })
        .collect();
    crate::kdd98::adjust_to_target(&mut d, target);
    d
}

/// Generates a USCensus-shaped dataset with cluster-structured features.
pub fn census_like(config: &GenConfig) -> Dataset {
    let doms = domains();
    let n = config.rows(BASE_ROWS);
    let mut rng = crate::synth::rng_for(config, 0xCE5u64);
    let planted = vec![
        PlantedSlice {
            predicates: vec![(0, 4), (10, 2)],
            elevated: 0.9,
            fraction: 0.06,
        },
        PlantedSlice {
            predicates: vec![(20, 1), (30, 3)],
            elevated: 0.85,
            fraction: 0.05,
        },
        PlantedSlice {
            predicates: vec![(5, 2), (6, 2), (7, 1)],
            elevated: 0.95,
            fraction: 0.08,
        },
        // Broad weak slice for the low-alpha regime (see adult.rs).
        PlantedSlice {
            predicates: vec![(40, 1)],
            elevated: 0.55,
            fraction: 0.25,
        },
    ];
    // 4 latent clusters with strong correlation — the K-Means label
    // structure of the paper's preprocessing.
    let sampler = CorrelatedSampler::new(&doms, 4, 0.75, 1.0, &mut rng);
    let x0 = sample_matrix(n, &doms, &sampler, &planted, &mut rng);
    // A 4-class classifier trained on K-Means labels errs often (~30%
    // diffuse baseline); the high diffuse rate is what lets the score
    // bound prune a large share of the level-2 pairs (the paper's census
    // counts), while the planted slices stay large enough (5-8% of rows)
    // to score positively despite the size penalty.
    let errors = classification_errors(&x0, &planted, 0.30, &mut rng);
    Dataset {
        name: "CensusSim".to_string(),
        features: FeatureSet::opaque_from_domains(&doms),
        x0,
        errors,
        task: Task::Classification { classes: 4 },
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        census_like(&GenConfig {
            seed: 4,
            scale: 0.02,
        })
    }

    #[test]
    fn shape_matches_table1() {
        let d = small();
        assert_eq!(d.m(), 68);
        assert_eq!(d.l(), 378);
        assert_eq!(d.task, Task::Classification { classes: 4 });
    }

    #[test]
    fn domains_sum_exactly() {
        assert_eq!(domains().iter().sum::<u32>(), 378);
        assert_eq!(domains().len(), 68);
    }

    #[test]
    fn replication_preserves_characteristics() {
        let d = small();
        let rep = d.x0.replicate_rows(3);
        assert_eq!(rep.rows(), d.n() * 3);
        assert_eq!(rep.domains(), d.x0.domains());
        // Relative slice sizes identical under replication.
        let count = |x0: &sliceline_frame::IntMatrix, j: usize, code: u32| {
            (0..x0.rows()).filter(|&r| x0.get(r, j) == code).count()
        };
        assert_eq!(count(&rep, 0, 4), 3 * count(&d.x0, 0, 4));
    }

    #[test]
    fn planted_three_predicate_slice_present() {
        let d = small();
        let deep = &d.planted[2];
        assert_eq!(deep.predicates.len(), 3);
        let matches = (0..d.n()).filter(|&r| deep.matches(&d.x0, r)).count();
        assert!(matches as f64 >= d.n() as f64 * 0.02);
    }

    #[test]
    fn deterministic() {
        let c = GenConfig {
            seed: 4,
            scale: 0.01,
        };
        assert_eq!(census_like(&c).errors, census_like(&c).errors);
    }
}
