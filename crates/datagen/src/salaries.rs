//! A deterministic clone of the Salaries dataset (397 professors: rank,
//! discipline, years since PhD, years of service, sex → nine-month
//! salary).
//!
//! The paper uses this tiny dataset — 2×2 replicated — for the Fig. 3
//! pruning/deduplication ablation. We regenerate a statistically similar
//! table from a fixed seed: same schema, same size, same qualitative
//! structure (salary grows with rank and experience; small planted
//! subgroup effects give SliceLine something to find). Being deterministic,
//! every test and bench sees the identical data.

use crate::synth::gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliceline_frame::{Column, DataFrame, DatasetEncoder, EncodedDataset};

/// Number of rows in the (cloned) Salaries dataset.
pub const ROWS: usize = 397;

/// Builds the Salaries data frame: columns `rank`, `discipline`,
/// `yrs.since.phd`, `yrs.service`, `sex`, and the label `salary`.
pub fn salaries() -> DataFrame {
    let mut rng = StdRng::seed_from_u64(0x5A1A_1E55);
    let ranks = ["AsstProf", "AssocProf", "Prof"];
    let disciplines = ["A", "B"];
    let sexes = ["Female", "Male"];
    let mut rank_col = Vec::with_capacity(ROWS);
    let mut disc_col = Vec::with_capacity(ROWS);
    let mut phd_col = Vec::with_capacity(ROWS);
    let mut service_col = Vec::with_capacity(ROWS);
    let mut sex_col = Vec::with_capacity(ROWS);
    let mut salary_col = Vec::with_capacity(ROWS);
    for _ in 0..ROWS {
        // Rank distribution similar to the original (Prof-heavy).
        let rank = match rng.gen_range(0..100u32) {
            0..=16 => 0,
            17..=32 => 1,
            _ => 2,
        };
        let discipline = usize::from(rng.gen::<f64>() < 0.54);
        // ~90% male in the original data.
        let sex = usize::from(rng.gen::<f64>() < 0.90);
        let yrs_phd: f64 = match rank {
            0 => rng.gen_range(1.0..11.0),
            1 => rng.gen_range(6.0..25.0),
            _ => rng.gen_range(10.0..56.0),
        };
        let yrs_service = (yrs_phd - rng.gen_range(0.0..6.0)).max(0.0);
        // Salary model: base by rank + discipline premium + experience,
        // with a penalty subgroup (female associate professors in
        // discipline A) that a debugging model will systematically miss.
        let base = match rank {
            0 => 80_000.0,
            1 => 93_000.0,
            _ => 126_000.0,
        };
        let mut salary = base + if discipline == 1 { 8_000.0 } else { 0.0 } + yrs_phd * 450.0
            - yrs_service * 120.0
            + gaussian(&mut rng) * 9_000.0;
        if sex == 0 && rank == 1 && discipline == 0 {
            salary -= 18_000.0;
        }
        rank_col.push(ranks[rank]);
        disc_col.push(disciplines[discipline]);
        phd_col.push(yrs_phd.round());
        service_col.push(yrs_service.round());
        sex_col.push(sexes[sex]);
        salary_col.push(salary.round().max(45_000.0));
    }
    let mut df = DataFrame::new();
    df.add_column("rank", Column::categorical_from_strings(&rank_col))
        .expect("fresh frame");
    df.add_column("discipline", Column::categorical_from_strings(&disc_col))
        .expect("aligned");
    df.add_column("yrs.since.phd", Column::Numeric(phd_col))
        .expect("aligned");
    df.add_column("yrs.service", Column::Numeric(service_col))
        .expect("aligned");
    df.add_column("sex", Column::categorical_from_strings(&sex_col))
        .expect("aligned");
    df.add_column("salary", Column::Numeric(salary_col))
        .expect("aligned");
    df
}

/// Salaries encoded with the paper's preprocessing (10 equi-width bins for
/// continuous features, salary split off as the regression label).
pub fn salaries_encoded() -> EncodedDataset {
    let df = salaries();
    let encoder = DatasetEncoder {
        recode_threshold: 0, // bin the year columns even though small
        ..DatasetEncoder::with_label("salary")
    };
    encoder.encode(&df).expect("schema is static")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliceline_frame::Column;

    #[test]
    fn has_397_rows_and_schema() {
        let df = salaries();
        assert_eq!(df.nrows(), ROWS);
        assert_eq!(df.ncols(), 6);
        assert_eq!(
            df.names(),
            &[
                "rank".to_string(),
                "discipline".to_string(),
                "yrs.since.phd".to_string(),
                "yrs.service".to_string(),
                "sex".to_string(),
                "salary".to_string(),
            ]
        );
    }

    #[test]
    fn deterministic() {
        let a = salaries();
        let b = salaries();
        assert_eq!(a, b);
    }

    #[test]
    fn encoded_matches_paper_shape() {
        let enc = salaries_encoded();
        // 5 features; one-hot width 27 in the paper: rank 3 + discipline 2
        // + 10 + 10 + sex 2 = 27.
        assert_eq!(enc.x0.cols(), 5);
        assert_eq!(enc.x0.onehot_cols(), 27);
        assert_eq!(enc.x0.rows(), ROWS);
        assert!(enc.labels.is_some());
    }

    #[test]
    fn salary_grows_with_rank() {
        let df = salaries();
        let (rank_codes, rank_labels) = match df.column("rank").unwrap() {
            Column::Categorical { codes, labels } => (codes.clone(), labels.clone()),
            _ => panic!("rank must be categorical"),
        };
        let salary = match df.column("salary").unwrap() {
            Column::Numeric(v) => v.clone(),
            _ => panic!("salary must be numeric"),
        };
        let mean_for = |label: &str| {
            let code = rank_labels.iter().position(|l| l == label).unwrap() as u32;
            let vals: Vec<f64> = rank_codes
                .iter()
                .zip(salary.iter())
                .filter(|(&c, _)| c == code)
                .map(|(_, &s)| s)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_for("Prof") > mean_for("AssocProf"));
        assert!(mean_for("AssocProf") > mean_for("AsstProf") - 5_000.0);
    }

    #[test]
    fn penalized_subgroup_exists() {
        // The planted "female associate professor in discipline A" group
        // must be present (so the Fig. 3 ablation has structure to find).
        let df = salaries();
        let rank = df.column("rank").unwrap();
        let disc = df.column("discipline").unwrap();
        let sex = df.column("sex").unwrap();
        let count = (0..df.nrows())
            .filter(|&i| {
                rank.display_value(i) == "AssocProf"
                    && disc.display_value(i) == "A"
                    && sex.display_value(i) == "Female"
            })
            .count();
        assert!(count >= 2, "subgroup only has {count} members");
    }
}
